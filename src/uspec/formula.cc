#include "formula.hh"

#include <sstream>

#include "common/logging.hh"

namespace rtlcheck::uspec {

std::string
nodeToString(const UhbNode &node)
{
    std::ostringstream oss;
    oss << "(" << node.instr.thread << "." << node.instr.index << ", "
        << stageName(node.stage) << ")";
    return oss.str();
}

Formula
fTrue()
{
    static const Formula t = std::make_shared<FormulaNode>();
    return t;
}

Formula
fFalse()
{
    static const Formula f = [] {
        auto n = std::make_shared<FormulaNode>();
        n->kind = FormulaNode::Kind::False;
        return n;
    }();
    return f;
}

Formula
fAnd(std::vector<Formula> children)
{
    std::vector<Formula> kept;
    for (auto &c : children) {
        if (c->kind == FormulaNode::Kind::False)
            return fFalse();
        if (c->kind == FormulaNode::Kind::True)
            continue;
        if (c->kind == FormulaNode::Kind::And) {
            for (const auto &g : c->children)
                kept.push_back(g);
        } else {
            kept.push_back(std::move(c));
        }
    }
    if (kept.empty())
        return fTrue();
    if (kept.size() == 1)
        return kept[0];
    auto n = std::make_shared<FormulaNode>();
    n->kind = FormulaNode::Kind::And;
    n->children = std::move(kept);
    return n;
}

Formula
fOr(std::vector<Formula> children)
{
    std::vector<Formula> kept;
    for (auto &c : children) {
        if (c->kind == FormulaNode::Kind::True)
            return fTrue();
        if (c->kind == FormulaNode::Kind::False)
            continue;
        if (c->kind == FormulaNode::Kind::Or) {
            for (const auto &g : c->children)
                kept.push_back(g);
        } else {
            kept.push_back(std::move(c));
        }
    }
    if (kept.empty())
        return fFalse();
    if (kept.size() == 1)
        return kept[0];
    auto n = std::make_shared<FormulaNode>();
    n->kind = FormulaNode::Kind::Or;
    n->children = std::move(kept);
    return n;
}

Formula
fNot(Formula child)
{
    switch (child->kind) {
      case FormulaNode::Kind::True:
        return fFalse();
      case FormulaNode::Kind::False:
        return fTrue();
      case FormulaNode::Kind::Not:
        return child->children[0];
      default: {
        auto n = std::make_shared<FormulaNode>();
        n->kind = FormulaNode::Kind::Not;
        n->children.push_back(std::move(child));
        return n;
      }
    }
}

Formula
fEdge(UhbNode src, UhbNode dst, bool is_add, std::string label)
{
    auto n = std::make_shared<FormulaNode>();
    n->kind = FormulaNode::Kind::Edge;
    n->src = src;
    n->dst = dst;
    n->isAdd = is_add;
    n->label = std::move(label);
    return n;
}

Formula
fLoadVal(litmus::InstrRef instr, std::uint32_t value)
{
    auto n = std::make_shared<FormulaNode>();
    n->kind = FormulaNode::Kind::LoadVal;
    n->instr = instr;
    n->value = value;
    return n;
}

namespace {

/** DNF worker: `negated` tracks the polarity from enclosing Nots. */
void
dnfRec(const Formula &f, bool negated, Branch current,
       std::vector<Branch> &out);

/** Try to extend a branch with a load-value constraint. Returns
 *  false when the branch becomes contradictory. */
bool
addLoadValue(Branch &branch, litmus::InstrRef instr, std::uint32_t v)
{
    auto [it, inserted] = branch.loadValues.insert({instr, v});
    return inserted || it->second == v;
}

void
dnfCross(const std::vector<Formula> &children, std::size_t idx,
         bool negated, Branch current, std::vector<Branch> &out)
{
    if (idx == children.size()) {
        out.push_back(std::move(current));
        return;
    }
    // Conjunction: expand child idx into branches, continue each.
    std::vector<Branch> partial;
    dnfRec(children[idx], negated, current, partial);
    for (auto &b : partial)
        dnfCross(children, idx + 1, negated, std::move(b), out);
}

void
dnfRec(const Formula &f, bool negated, Branch current,
       std::vector<Branch> &out)
{
    using Kind = FormulaNode::Kind;
    switch (f->kind) {
      case Kind::True:
        if (!negated)
            out.push_back(std::move(current));
        return;
      case Kind::False:
        if (negated)
            out.push_back(std::move(current));
        return;
      case Kind::Not:
        dnfRec(f->children[0], !negated, std::move(current), out);
        return;
      case Kind::And:
      case Kind::Or: {
        const bool conjunctive = (f->kind == Kind::And) != negated;
        if (conjunctive) {
            dnfCross(f->children, 0, negated, std::move(current), out);
        } else {
            for (const auto &c : f->children) {
                Branch copy = current;
                dnfRec(c, negated, std::move(copy), out);
            }
        }
        return;
      }
      case Kind::Edge: {
        EdgeLit lit;
        lit.src = f->src;
        lit.dst = f->dst;
        lit.isAdd = f->isAdd;
        lit.label = f->label;
        lit.positive = !negated;
        current.edges.push_back(std::move(lit));
        out.push_back(std::move(current));
        return;
      }
      case Kind::LoadVal: {
        if (negated) {
            RC_FATAL("negated load-value constraint is outside the "
                     "SVA-synthesizable µspec subset");
        }
        if (addLoadValue(current, f->instr, f->value))
            out.push_back(std::move(current));
        return;
      }
    }
}

} // namespace

std::vector<Branch>
toDnf(const Formula &formula)
{
    std::vector<Branch> out;
    dnfRec(formula, false, Branch{}, out);
    return out;
}

std::string
formulaToString(const Formula &f)
{
    using Kind = FormulaNode::Kind;
    switch (f->kind) {
      case Kind::True:
        return "true";
      case Kind::False:
        return "false";
      case Kind::Not:
        return "~" + formulaToString(f->children[0]);
      case Kind::And:
      case Kind::Or: {
        std::string sep = f->kind == Kind::And ? " /\\ " : " \\/ ";
        std::string s = "(";
        for (std::size_t i = 0; i < f->children.size(); ++i) {
            if (i)
                s += sep;
            s += formulaToString(f->children[i]);
        }
        return s + ")";
      }
      case Kind::Edge: {
        std::string s = f->isAdd ? "AddEdge" : "EdgeExists";
        return s + "[" + nodeToString(f->src) + " -> " +
               nodeToString(f->dst) + "]";
      }
      case Kind::LoadVal: {
        std::ostringstream oss;
        oss << "LoadVal[" << f->instr.thread << "." << f->instr.index
            << " == " << f->value << "]";
        return oss.str();
      }
    }
    return "?";
}

bool
isTriviallyTrue(const Formula &f)
{
    return f->kind == FormulaNode::Kind::True;
}

bool
isTriviallyFalse(const Formula &f)
{
    return f->kind == FormulaNode::Kind::False;
}

} // namespace rtlcheck::uspec
