/**
 * @file
 * Instantiation of µspec axioms against a litmus test.
 *
 * Quantifiers are expanded over the test's microops (and thread ids,
 * for core quantifiers); statically-decidable predicates are
 * evaluated away. Data predicates are handled per the paper's two
 * regimes:
 *
 *  - EvalMode::Omniscient (§3.2): the Check suite's behaviour —
 *    predicates over load values are decided from the litmus test's
 *    outcome under test, so instances reduce to pure edge formulas
 *    for the µhb scenario solver.
 *
 *  - EvalMode::OutcomeAgnostic (§4.2): RTL verifiers cannot enforce
 *    the outcome, so data predicates on loads become symbolic
 *    load-value atoms that the assertion generator folds into node
 *    mappings, and DataFromFinalStateAtPA is conservatively false.
 */

#ifndef RTLCHECK_USPEC_EVAL_HH
#define RTLCHECK_USPEC_EVAL_HH

#include <string>
#include <vector>

#include "litmus/test.hh"
#include "uspec/ast.hh"
#include "uspec/formula.hh"

namespace rtlcheck::uspec {

enum class EvalMode { Omniscient, OutcomeAgnostic };

/** One ground axiom instance (one per top-level binding). */
struct AxiomInstance
{
    std::string axiom;    ///< axiom name
    std::string binding;  ///< e.g. "a1=0.0, a2=1.1"
    Formula formula;
};

/**
 * Instantiate every axiom of the model on the test. One instance is
 * produced per binding of each axiom's outermost quantifier block;
 * trivially-true instances and duplicates (e.g. the two symmetric
 * bindings of a total-order axiom) are dropped.
 */
std::vector<AxiomInstance> instantiate(const Model &model,
                                       const litmus::Test &test,
                                       EvalMode mode);

/** Conjunction of all instances, for whole-test reasoning. */
Formula conjunction(const std::vector<AxiomInstance> &instances);

} // namespace rtlcheck::uspec

#endif // RTLCHECK_USPEC_EVAL_HH
