/**
 * @file
 * The µspec model of the TSO (store-buffer) Multi-V-scale variant.
 *
 * Demonstrates the paper's claim (§1) that the methodology handles
 * ISA-level MCMs beyond SC: stores perform at a separate Memory
 * location (the store-buffer drain), loads may perform before
 * po-earlier stores to other addresses, and same-core same-address
 * loads forward from the store buffer.
 */

#ifndef RTLCHECK_USPEC_TSO_HH
#define RTLCHECK_USPEC_TSO_HH

#include "uspec/ast.hh"

namespace rtlcheck::uspec {

/** µspec source text of the TSO Multi-V-scale model. */
const char *tsoVscaleSource();

/** Parsed TSO model (parsed once, cached). */
const Model &tsoVscaleModel();

} // namespace rtlcheck::uspec

#endif // RTLCHECK_USPEC_TSO_HH
