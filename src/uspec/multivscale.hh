/**
 * @file
 * The µspec model of the Multi-V-scale processor (paper §5.3).
 */

#ifndef RTLCHECK_USPEC_MULTIVSCALE_HH
#define RTLCHECK_USPEC_MULTIVSCALE_HH

#include "uspec/ast.hh"

namespace rtlcheck::uspec {

/** µspec source text of the Multi-V-scale model. */
const char *multiVscaleSource();

/** Parsed Multi-V-scale model (parsed once, cached). */
const Model &multiVscaleModel();

} // namespace rtlcheck::uspec

#endif // RTLCHECK_USPEC_MULTIVSCALE_HH
