/**
 * @file
 * Abstract syntax for the µspec modeling language.
 *
 * µspec is the first-order logic language the Check suite uses to
 * describe microarchitectural happens-before orderings (paper §2.1,
 * Figures 3b and 5). A model is a set of named axioms plus reusable
 * macros; axioms quantify over the microops of a litmus test and
 * constrain µhb graph edges through predicates and AddEdge /
 * EdgeExists terms.
 *
 * Macro expansion follows µspec convention: a macro body may refer to
 * variables bound at its expansion site (e.g. `i` in Figure 5's
 * macros), so expansion is inlining without renaming.
 */

#ifndef RTLCHECK_USPEC_AST_HH
#define RTLCHECK_USPEC_AST_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rtlcheck::uspec {

/**
 * Pipeline stages / performing locations of the modeled
 * microarchitectures. The in-order SC pipeline uses the first three;
 * the TSO store-buffer variant adds Memory, the point where a store
 * drains from its store buffer into the memory array.
 */
enum class Stage : int
{
    Fetch = 0,
    DecodeExecute = 1,
    Writeback = 2,
    Memory = 3,
};

constexpr int numStages = 4;

/** Parse a stage name as written in µspec models. */
Stage stageFromName(const std::string &name);
std::string stageName(Stage stage);

/** A (microop-variable, stage) pair inside an edge term. */
struct NodeSpec
{
    std::string var;
    Stage stage = Stage::Fetch;
};

/** One edge inside AddEdge / EdgeExists / EdgesExist. */
struct EdgeSpec
{
    NodeSpec src;
    NodeSpec dst;
    std::string label;
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/** Quantifier domain. */
enum class Domain { Microop, Core };

struct Expr
{
    enum class Kind
    {
        Forall,      ///< vars over domain; children[0] = body
        Exists,      ///< vars over domain; children[0] = body
        And,         ///< children[0..n]
        Or,          ///< children[0..n]
        Not,         ///< children[0]
        Predicate,   ///< name + variable args
        AddEdge,     ///< edges (conjunction if several)
        EdgeExists,  ///< edges (conjunction if several)
        ExpandMacro, ///< name of macro to inline
    };

    Kind kind = Kind::Predicate;
    Domain domain = Domain::Microop;
    std::string name;                ///< predicate / macro name
    std::vector<std::string> vars;   ///< quantified vars or pred args
    std::vector<EdgeSpec> edges;
    std::vector<ExprPtr> children;
};

/** A named top-level axiom. */
struct Axiom
{
    std::string name;
    ExprPtr body;
};

/** A parsed µspec model. */
struct Model
{
    std::vector<Axiom> axioms;
    std::map<std::string, ExprPtr> macros;
};

} // namespace rtlcheck::uspec

#endif // RTLCHECK_USPEC_AST_HH
