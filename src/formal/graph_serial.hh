/**
 * @file
 * Binary serialization of explored StateGraphs for the on-disk
 * artifact store.
 *
 * Exploration dominates end-to-end verification time; serializing a
 * finished graph lets a later *process* skip it entirely — the
 * persistent analogue of formal::GraphCache. The format is a flat
 * dump of every StateGraph field (states stay bit-packed, edges are
 * flattened into one array with per-node counts), written through
 * the deterministic ByteWriter so that serialize(deserialize(bytes))
 * reproduces `bytes` exactly — the round-trip identity the test
 * suite asserts by memcmp.
 *
 * Robustness: the payload leads with a format version (bumped on any
 * layout change; mismatches are refused, never reinterpreted), every
 * read is bounds-checked, and structural invariants (array sizes
 * consistent, mask/input/parent indices in range) are re-validated
 * after decode, so a truncated or corrupted artifact yields a null
 * graph and an error string rather than a crash. File-level
 * integrity (magic, checksum) is the artifact store's job — see
 * service/artifact_store.hh; this layer assumes the bytes arrived
 * intact but still refuses malformed content defensively.
 */

#ifndef RTLCHECK_FORMAL_GRAPH_SERIAL_HH
#define RTLCHECK_FORMAL_GRAPH_SERIAL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "formal/state_graph.hh"

namespace rtlcheck::formal {

/** Bumped on any change to the serialized StateGraph layout. */
constexpr std::uint32_t kGraphFormatVersion = 1;

class GraphSerializer
{
  public:
    static std::vector<std::uint8_t> serialize(const StateGraph &g);

    /** Null on malformed input; `error` (optional) says why. */
    static std::shared_ptr<StateGraph>
    deserialize(const std::uint8_t *data, std::size_t size,
                std::string *error = nullptr);
};

inline std::vector<std::uint8_t>
serializeGraph(const StateGraph &graph)
{
    return GraphSerializer::serialize(graph);
}

inline std::shared_ptr<StateGraph>
deserializeGraph(const std::vector<std::uint8_t> &bytes,
                 std::string *error = nullptr)
{
    return GraphSerializer::deserialize(bytes.data(), bytes.size(),
                                        error);
}

} // namespace rtlcheck::formal

#endif // RTLCHECK_FORMAL_GRAPH_SERIAL_HH
