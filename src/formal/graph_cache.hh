/**
 * @file
 * Cross-configuration reuse of explored state graphs.
 *
 * Exploring the reachable state graph dominates end-to-end
 * verification time, yet the same (netlist, assumptions) pair is
 * explored repeatedly: once per engine configuration in a Table-1
 * style sweep, and once per figure in the benchmark suite. The cache
 * keys finished explorations on the netlist's content fingerprint
 * plus the resolved assumption set and predicate roots, so every
 * subsequent request — including ones from an independently
 * re-elaborated netlist of the same design — is served without
 * re-exploring.
 *
 * A cached graph serves a *more* bounded request through GraphView
 * (truncated BFS runs are prefixes of fuller runs; see
 * state_graph.hh), so a complete Full_Proof graph satisfies Hybrid's
 * truncated exploration with bit-identical verdicts. A cached graph
 * that is itself truncated below the request is insufficient: the
 * cache re-explores at the requested budget and keeps whichever
 * graph is more complete.
 *
 * Thread safety: obtain() may be called concurrently (the suite
 * runner fans tests out across a pool). The map is guarded by one
 * mutex; each entry has its own mutex so two threads asking for the
 * same key block on each other (one explores, the other reuses)
 * while requests for different keys explore in parallel.
 */

#ifndef RTLCHECK_FORMAL_GRAPH_CACHE_HH
#define RTLCHECK_FORMAL_GRAPH_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "formal/state_graph.hh"

namespace rtlcheck::formal {

class GraphCache
{
  public:
    struct Stats
    {
        std::size_t hits = 0;      ///< requests served from cache
        std::size_t misses = 0;    ///< requests that had to explore
        std::size_t explores = 0;  ///< explorations actually run
    };

    /**
     * Return a graph equivalent to `StateGraph(netlist, assumptions,
     * preds, limits)`, exploring only if no sufficient graph is
     * cached. The returned graph may be *larger* than requested —
     * callers must view it through `GraphView(graph.get(),
     * limits.maxNodes)` to recover bounded-run semantics. `was_hit`
     * (optional) reports whether the request was served from cache.
     */
    std::shared_ptr<const StateGraph>
    obtain(const rtl::Netlist &netlist,
           const sva::PredicateTable &preds,
           const std::vector<Assumption> &assumptions,
           const ExploreLimits &limits, bool *was_hit = nullptr);

    /** Content key of a request (netlist fingerprint + predicate
     *  roots + resolved assumptions). Exposed for tests. */
    static std::uint64_t keyOf(const rtl::Netlist &netlist,
                               const sva::PredicateTable &preds,
                               const std::vector<Assumption> &assumptions);

    Stats stats() const;
    void clear();

  private:
    struct Entry
    {
        std::mutex mutex;
        std::shared_ptr<const StateGraph> graph;
    };

    /** Can `graph` serve a request explored with `limits`? */
    static bool sufficient(const StateGraph &graph,
                           const ExploreLimits &limits);

    mutable std::mutex _mutex;
    std::unordered_map<std::uint64_t, std::unique_ptr<Entry>> _entries;
    Stats _stats;
};

} // namespace rtlcheck::formal

#endif // RTLCHECK_FORMAL_GRAPH_CACHE_HH
