/**
 * @file
 * Cross-configuration reuse of explored state graphs.
 *
 * Exploring the reachable state graph dominates end-to-end
 * verification time, yet the same (netlist, assumptions) pair is
 * explored repeatedly: once per engine configuration in a Table-1
 * style sweep, and once per figure in the benchmark suite. The cache
 * keys finished explorations on the netlist's content fingerprint
 * plus the resolved assumption set and predicate roots, so every
 * subsequent request — including ones from an independently
 * re-elaborated netlist of the same design — is served without
 * re-exploring.
 *
 * A cached graph serves a *more* bounded request through GraphView
 * (truncated BFS runs are prefixes of fuller runs; see
 * state_graph.hh), so a complete Full_Proof graph satisfies Hybrid's
 * truncated exploration with bit-identical verdicts. A cached graph
 * that is itself truncated below the request is insufficient: the
 * cache re-explores at the requested budget and keeps whichever
 * graph is more complete.
 *
 * Thread safety: obtain() may be called concurrently (the suite
 * runner fans tests out across a pool). The map and every entry's
 * graph pointer are guarded by one mutex; each entry additionally
 * has its own mutex so two threads asking for the same key block on
 * each other (one explores, the other reuses) while requests for
 * different keys explore in parallel. Eviction only ever resets an
 * entry's graph pointer under the map mutex — shared_ptr holders
 * returned from earlier obtain() calls stay valid.
 *
 * Memory: setBudget() bounds the bytes/graphs kept resident. When a
 * freshly published graph pushes the cache over budget, the
 * least-recently-used other graphs are dropped (counted in
 * Stats::evictions); a later request for an evicted key simply
 * re-explores.
 */

#ifndef RTLCHECK_FORMAL_GRAPH_CACHE_HH
#define RTLCHECK_FORMAL_GRAPH_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "formal/state_graph.hh"

namespace rtlcheck::formal {

class GraphCache
{
  public:
    struct Stats
    {
        std::size_t hits = 0;      ///< requests served from cache
        std::size_t misses = 0;    ///< requests that had to explore
        std::size_t explores = 0;  ///< explorations actually run
        std::size_t evictions = 0; ///< graphs dropped for the budget
        std::size_t entries = 0;     ///< graphs currently resident
        std::size_t bytesCached = 0; ///< their approximate bytes
        std::size_t diskHits = 0;   ///< misses served by the spill load hook
        std::size_t diskStores = 0; ///< fresh explorations handed to save
    };

    /**
     * Second-level (persistent) storage behind the in-memory map.
     * On a memory miss the cache first asks `load` for the key; a
     * sufficient loaded graph is published and served like a hit
     * (counted in Stats::diskHits). Every freshly explored graph is
     * offered to `save` (the hook decides whether to overwrite an
     * existing, possibly more complete, artifact). Hooks run without
     * the cache-wide mutex — only the per-key entry lock is held —
     * so disk I/O for one key never stalls other keys. Installed by
     * the service layer (service/service.cc), keeping rc_formal free
     * of any dependency on the artifact store.
     */
    struct SpillHooks
    {
        std::function<std::shared_ptr<const StateGraph>(
            std::uint64_t key)> load;
        std::function<void(std::uint64_t key, const StateGraph &)>
            save;
    };

    void setSpillHooks(SpillHooks hooks);

    /**
     * Return a graph equivalent to `StateGraph(netlist, assumptions,
     * preds, limits)`, exploring only if no sufficient graph is
     * cached. The returned graph may be *larger* than requested —
     * callers must view it through `GraphView(graph.get(),
     * limits.maxNodes)` to recover bounded-run semantics. `was_hit`
     * (optional) reports whether the request was served from cache.
     */
    std::shared_ptr<const StateGraph>
    obtain(const rtl::Netlist &netlist,
           const sva::PredicateTable &preds,
           const std::vector<Assumption> &assumptions,
           const ExploreLimits &limits, bool *was_hit = nullptr,
           ExploreObserver *observer = nullptr);

    /** Bound resident graphs to `max_bytes` (memoryBytes() sum) and
     *  `max_entries` graphs; 0 = unlimited. Applies to future
     *  publications; the newest graph is never evicted. */
    void setBudget(std::size_t max_bytes,
                   std::size_t max_entries = 0);

    /** Content key of a request (netlist fingerprint + predicate
     *  roots + resolved assumptions). Exposed for tests. */
    static std::uint64_t keyOf(const rtl::Netlist &netlist,
                               const sva::PredicateTable &preds,
                               const std::vector<Assumption> &assumptions);

    Stats stats() const;
    void clear();

  private:
    struct Entry
    {
        /** Serializes exploration per key (held without _mutex). */
        std::mutex mutex;
        // The fields below are guarded by GraphCache::_mutex, NOT by
        // the entry mutex: eviction must be able to drop a graph
        // while another thread holds the entry mutex to explore a
        // *different* key.
        std::shared_ptr<const StateGraph> graph;
        std::size_t bytes = 0;
        std::uint64_t lastUse = 0;
    };

    /** Can `graph` serve a request explored with `limits`? */
    static bool sufficient(const StateGraph &graph,
                           const ExploreLimits &limits);

    /** Drop LRU graphs until within budget; `keep` is exempt.
     *  Caller holds _mutex. */
    void enforceBudgetLocked(const Entry *keep);

    mutable std::mutex _mutex;
    SpillHooks _spill; ///< guarded by _mutex; copied before use
    std::unordered_map<std::uint64_t, std::shared_ptr<Entry>>
        _entries;
    Stats _stats;
    std::size_t _maxBytes = 0;
    std::size_t _maxEntries = 0;
    std::size_t _bytesCached = 0;
    std::size_t _numCached = 0;
    std::uint64_t _useCounter = 0;
};

} // namespace rtlcheck::formal

#endif // RTLCHECK_FORMAL_GRAPH_CACHE_HH
