/**
 * @file
 * SV assumptions consumed by the formal engine (paper §4.1).
 *
 * Three kinds, mirroring the Assumption Generator's output:
 *
 *  - InitialPin: `first |-> <state> == <value>` — pins part of the
 *    otherwise-free post-reset state (memory words, registers). Our
 *    explicit-state engine applies these by constructing the pinned
 *    initial state, which is exactly how a model checker discharges
 *    an assumption that only constrains cycle 0.
 *
 *  - Implication: `ant |-> cons`, checked every cycle. Transitions
 *    whose cycle satisfies `ant` but not `cons` are pruned — i.e.
 *    executions are removed only *after* the offending event occurs,
 *    the JasperGold behaviour §3.1 describes.
 *
 *  - FinalValueCover: the final-value assumption. The engine searches
 *    for a covering transition (antecedent: all cores halted;
 *    consequent: required final memory values). If none is reachable
 *    the assumption is *unreachable* and the litmus test is verified
 *    without checking any assertion (§4.1); if one is reachable on a
 *    buggy design, its witness trace exhibits the forbidden outcome.
 */

#ifndef RTLCHECK_FORMAL_ASSUMPTIONS_HH
#define RTLCHECK_FORMAL_ASSUMPTIONS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rtlcheck::formal {

struct Assumption
{
    enum class Kind { InitialPin, Implication, FinalValueCover };

    Kind kind = Kind::Implication;
    std::string name;
    std::string svaText;   ///< rendered SystemVerilog

    // InitialPin
    std::size_t stateSlot = 0;
    std::uint32_t value = 0;

    // Implication / FinalValueCover (predicate-table ids)
    int antecedent = -1;
    int consequent = -1;
};

} // namespace rtlcheck::formal

#endif // RTLCHECK_FORMAL_ASSUMPTIONS_HH
