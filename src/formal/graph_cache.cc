#include "graph_cache.hh"

#include "common/hashing.hh"

namespace rtlcheck::formal {

std::uint64_t
GraphCache::keyOf(const rtl::Netlist &netlist,
                  const sva::PredicateTable &preds,
                  const std::vector<Assumption> &assumptions)
{
    // The netlist fingerprint covers nodes, remap, and state layout,
    // so two independently elaborated netlists of the same design
    // share a key. Predicates and assumptions are hashed by their
    // resolved content (design-space signal ids, state slots,
    // predicate ids) — names and SVA text are presentation only.
    std::uint64_t h = netlist.fingerprint();
    h = hashCombine(h, static_cast<std::uint64_t>(preds.size()));
    for (int i = 0; i < preds.size(); ++i)
        h = hashCombine(h, preds.signalOf(i).id);
    h = hashCombine(h, assumptions.size());
    for (const Assumption &a : assumptions) {
        h = hashCombine(h, static_cast<std::uint64_t>(a.kind));
        h = hashCombine(h, (std::uint64_t(a.stateSlot) << 32) | a.value);
        h = hashCombine(h,
                        (std::uint64_t(std::uint32_t(a.antecedent))
                         << 32) |
                            std::uint32_t(a.consequent));
    }
    return h;
}

bool
GraphCache::sufficient(const StateGraph &graph,
                       const ExploreLimits &limits)
{
    // A complete graph answers anything (GraphView recovers any
    // bounded prefix). A truncated graph answers requests bounded at
    // or below what it expanded; an unlimited request (maxNodes == 0)
    // needs a complete graph.
    if (graph.complete())
        return true;
    return limits.maxNodes != 0 &&
           graph.expandedNodes() >= limits.maxNodes;
}

std::shared_ptr<const StateGraph>
GraphCache::obtain(const rtl::Netlist &netlist,
                   const sva::PredicateTable &preds,
                   const std::vector<Assumption> &assumptions,
                   const ExploreLimits &limits, bool *was_hit)
{
    const std::uint64_t key = keyOf(netlist, preds, assumptions);

    Entry *entry = nullptr;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto &slot = _entries[key];
        if (!slot)
            slot = std::make_unique<Entry>();
        entry = slot.get();
    }

    // Per-entry lock: concurrent requests for the same key serialize
    // (first one explores, the rest reuse); different keys proceed in
    // parallel.
    std::lock_guard<std::mutex> entry_lock(entry->mutex);
    if (entry->graph && sufficient(*entry->graph, limits)) {
        std::lock_guard<std::mutex> lock(_mutex);
        ++_stats.hits;
        if (was_hit)
            *was_hit = true;
        return entry->graph;
    }

    auto graph = std::make_shared<const StateGraph>(
        netlist, assumptions, preds, limits);
    // Keep the more-complete graph: a truncated cached graph is
    // replaced by this larger exploration, never the reverse (the
    // sufficiency check above would have reused a larger one).
    entry->graph = graph;

    std::lock_guard<std::mutex> lock(_mutex);
    ++_stats.misses;
    ++_stats.explores;
    if (was_hit)
        *was_hit = false;
    return graph;
}

GraphCache::Stats
GraphCache::stats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _stats;
}

void
GraphCache::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _entries.clear();
    _stats = Stats{};
}

} // namespace rtlcheck::formal
