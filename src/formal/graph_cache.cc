#include "graph_cache.hh"

#include "common/hashing.hh"

namespace rtlcheck::formal {

std::uint64_t
GraphCache::keyOf(const rtl::Netlist &netlist,
                  const sva::PredicateTable &preds,
                  const std::vector<Assumption> &assumptions)
{
    // The netlist fingerprint covers nodes, remap, and state layout,
    // so two independently elaborated netlists of the same design
    // share a key. Predicates and assumptions are hashed by their
    // resolved content (design-space signal ids, state slots,
    // predicate ids) — names and SVA text are presentation only.
    std::uint64_t h = netlist.fingerprint();
    h = hashCombine(h, static_cast<std::uint64_t>(preds.size()));
    for (int i = 0; i < preds.size(); ++i)
        h = hashCombine(h, preds.signalOf(i).id);
    h = hashCombine(h, assumptions.size());
    for (const Assumption &a : assumptions) {
        h = hashCombine(h, static_cast<std::uint64_t>(a.kind));
        h = hashCombine(h, (std::uint64_t(a.stateSlot) << 32) | a.value);
        h = hashCombine(h,
                        (std::uint64_t(std::uint32_t(a.antecedent))
                         << 32) |
                            std::uint32_t(a.consequent));
    }
    return h;
}

bool
GraphCache::sufficient(const StateGraph &graph,
                       const ExploreLimits &limits)
{
    // A complete graph answers anything (GraphView recovers any
    // bounded prefix). A truncated graph answers requests bounded at
    // or below what it expanded; an unlimited request (maxNodes == 0)
    // needs a complete graph.
    if (graph.complete())
        return true;
    return limits.maxNodes != 0 &&
           graph.expandedNodes() >= limits.maxNodes;
}

std::shared_ptr<const StateGraph>
GraphCache::obtain(const rtl::Netlist &netlist,
                   const sva::PredicateTable &preds,
                   const std::vector<Assumption> &assumptions,
                   const ExploreLimits &limits, bool *was_hit,
                   ExploreObserver *observer)
{
    const std::uint64_t key = keyOf(netlist, preds, assumptions);

    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto &slot = _entries[key];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }

    // Per-entry lock: concurrent requests for the same key serialize
    // (first one explores, the rest reuse); different keys proceed in
    // parallel. Never taken while holding _mutex, so eviction can
    // drop graphs of other keys while this one explores.
    std::lock_guard<std::mutex> entry_lock(entry->mutex);
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (entry->graph && sufficient(*entry->graph, limits)) {
            ++_stats.hits;
            entry->lastUse = ++_useCounter;
            if (was_hit)
                *was_hit = true;
            return entry->graph;
        }
    }

    // Memory miss: consult the persistent tier before exploring.
    // Hook calls happen under the entry lock only (see SpillHooks).
    SpillHooks spill;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        spill = _spill;
    }
    if (spill.load) {
        if (std::shared_ptr<const StateGraph> loaded =
                spill.load(key)) {
            if (sufficient(*loaded, limits)) {
                std::lock_guard<std::mutex> lock(_mutex);
                if (entry->graph) {
                    _bytesCached -= entry->bytes;
                    --_numCached;
                }
                entry->graph = loaded;
                entry->bytes = loaded->memoryBytes();
                entry->lastUse = ++_useCounter;
                _bytesCached += entry->bytes;
                ++_numCached;
                ++_stats.diskHits;
                enforceBudgetLocked(entry.get());
                if (was_hit)
                    *was_hit = true;
                return loaded;
            }
        }
    }

    // The exploration observer only ever fires on this caller's own
    // fresh exploration — never on a cache hit — so the engine can
    // tell whether its monitors actually saw the graph being built.
    auto graph = std::make_shared<const StateGraph>(
        netlist, assumptions, preds, limits, observer);

    if (spill.save) {
        spill.save(key, *graph);
        std::lock_guard<std::mutex> lock(_mutex);
        ++_stats.diskStores;
    }

    std::lock_guard<std::mutex> lock(_mutex);
    // Keep the more-complete graph: a truncated cached graph is
    // replaced by this larger exploration, never the reverse (the
    // sufficiency check above would have reused a larger one).
    if (entry->graph) {
        _bytesCached -= entry->bytes;
        --_numCached;
    }
    entry->graph = graph;
    entry->bytes = graph->memoryBytes();
    entry->lastUse = ++_useCounter;
    _bytesCached += entry->bytes;
    ++_numCached;
    ++_stats.misses;
    ++_stats.explores;
    enforceBudgetLocked(entry.get());
    if (was_hit)
        *was_hit = false;
    return graph;
}

void
GraphCache::setSpillHooks(SpillHooks hooks)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _spill = std::move(hooks);
}

void
GraphCache::setBudget(std::size_t max_bytes, std::size_t max_entries)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _maxBytes = max_bytes;
    _maxEntries = max_entries;
    enforceBudgetLocked(nullptr);
}

void
GraphCache::enforceBudgetLocked(const Entry *keep)
{
    if (!_maxBytes && !_maxEntries)
        return;
    for (;;) {
        const bool over =
            (_maxBytes && _bytesCached > _maxBytes) ||
            (_maxEntries && _numCached > _maxEntries);
        if (!over)
            return;
        Entry *victim = nullptr;
        for (auto &kv : _entries) {
            Entry *e = kv.second.get();
            if (!e->graph || e == keep)
                continue;
            if (!victim || e->lastUse < victim->lastUse)
                victim = e;
        }
        if (!victim)
            return; // only the exempt graph remains
        _bytesCached -= victim->bytes;
        victim->bytes = 0;
        victim->graph.reset();
        --_numCached;
        ++_stats.evictions;
    }
}

GraphCache::Stats
GraphCache::stats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    Stats s = _stats;
    s.entries = _numCached;
    s.bytesCached = _bytesCached;
    return s;
}

void
GraphCache::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _entries.clear();
    _stats = Stats{};
    _bytesCached = 0;
    _numCached = 0;
    _useCounter = 0;
}

} // namespace rtlcheck::formal
