/**
 * @file
 * The property-verification engine (our JasperGold substitute).
 *
 * Given an elaborated design, assumptions, and generated properties,
 * the engine (i) explores the reachable state graph under the
 * assumptions, (ii) resolves final-value covers — an unreachable
 * cover verifies the whole litmus test without touching assertions
 * (§4.1) while a reachable one on a buggy design *is* an execution of
 * the forbidden outcome — and (iii) checks every property by running
 * its NFA product over the cached graph.
 *
 * Per-property outcomes mirror §6.1: Proven (complete proof over the
 * full reachable graph), Bounded (true for all traces up to N cycles,
 * where N is bounded by exploration/product budgets), or Falsified
 * (counterexample trace, reconstructed as concrete per-cycle arbiter
 * inputs that the simulator can replay).
 *
 * Engine configurations play the role of the paper's Table 1: the
 * Hybrid configuration uses small budgets (bounded engines), the
 * Full_Proof configuration larger ones.
 */

#ifndef RTLCHECK_FORMAL_ENGINE_HH
#define RTLCHECK_FORMAL_ENGINE_HH

#include <atomic>
#include <optional>
#include <string>
#include <vector>

#include "formal/graph_cache.hh"
#include "formal/state_graph.hh"
#include "sva/property.hh"

namespace rtlcheck::formal {

/**
 * Which verification back-end runs. Explicit is the state-graph
 * product engine; Bmc is the SAT-based bounded-model-checking +
 * k-induction engine; Portfolio races both on the suite thread pool
 * and takes the first conclusive verdict, cancelling the loser.
 */
enum class Backend { Explicit, Bmc, Portfolio };

std::string backendName(Backend b);
/** Parse "explicit"/"bmc"/"portfolio"; std::nullopt on anything
 *  else so the CLI can reject bad values instead of defaulting. */
std::optional<Backend> backendFromName(const std::string &name);

struct EngineConfig
{
    std::string name;
    std::size_t exploreMaxNodes = 0;   ///< 0 = unlimited
    std::size_t productMaxStates = 0;  ///< per property; 0 = unlimited
    /** Parallel lanes for the per-property product checks (the
     *  analogue of JasperGold's internal engine parallelism); 1 =
     *  serial, 0 = ThreadPool::defaultJobs(). Results are identical
     *  at every setting. */
    std::size_t jobs = 1;
    /** Parallel lanes for state-graph exploration (level-synchronized
     *  frontier expansion; see state_graph.hh); 1 = serial, 0 =
     *  ThreadPool::defaultJobs(). Graphs and verdicts are identical
     *  at every setting. Kept at 1 by default because the suite
     *  runner already fans whole tests out across a pool. */
    std::size_t exploreJobs = 1;
    /** Step per-property monitors during fresh explorations so hard
     *  counterexamples are detected as soon as the violating path
     *  exists, before the exploration fixpoint. Never changes any
     *  verdict or witness — only *when* falsification is detected
     *  (PropertyResult::earlyFalsified). */
    bool earlyFalsify = true;
    /** Back-end selector (see Backend). */
    Backend backend = Backend::Explicit;
    /** BMC unroll bound in cycles. Chosen so the suite's deepest
     *  known counterexamples (the §7.1 store-drop bug included) fit
     *  comfortably. */
    std::size_t bmcDepth = 16;
    /** Largest k-induction window tried for unresolved properties
     *  and covers after the BMC sweep; 0 disables induction (every
     *  unfalsified property stays Bounded). */
    std::size_t inductionDepth = 6;
    /** Depth-incremental BMC: one solver deepens across the whole
     *  sweep, per-depth query gates are retired via activation
     *  groups, and learned clauses carry between depths. Off =
     *  rebuild the CNF from scratch at every depth (the full-price
     *  baseline the bench gates against). Verdict classes, witness
     *  depths, and inductionK are identical either way. */
    bool satIncremental = true;
    /** Cooperative cancellation (portfolio mode): when the flag goes
     *  true, the back-end abandons work and returns a result with
     *  `cancelled` set. */
    const std::atomic<bool> *cancel = nullptr;
};

/** Table 1's Hybrid configuration analogue: bounded engines. */
EngineConfig hybridConfig();
/** Table 1's Full_Proof configuration analogue. */
EngineConfig fullProofConfig();
/** No budgets: verdicts are cone-determined, enabling the service's
 *  cone-key incremental reuse. */
EngineConfig unboundedConfig();

enum class ProofStatus { Proven, Bounded, Falsified };

std::string proofStatusName(ProofStatus s);

/** A violating or covering trace as concrete per-cycle inputs. */
struct WitnessTrace
{
    std::vector<std::uint8_t> inputs;
};

struct PropertyResult
{
    std::string name;
    ProofStatus status = ProofStatus::Proven;
    /** For Bounded: all traces of up to this many cycles satisfy the
     *  property. */
    std::uint32_t boundCycles = 0;
    std::optional<WitnessTrace> counterexample;
    std::size_t productStates = 0;
    /** Wall-clock spent checking this property's NFA product. */
    double checkSeconds = 0.0;
    /** The counterexample was detected by an exploration-time
     *  monitor, before the exploration fixpoint. */
    bool earlyFalsified = false;
    /** Wall-clock from exploration start to the monitor detecting
     *  the counterexample (0 unless earlyFalsified). */
    double earlyFalsifySeconds = 0.0;
    /** For BMC-proven properties: the k-induction window that closed
     *  the proof (0 when the proof came from the explicit engine or
     *  the property is not Proven). */
    std::uint32_t inductionK = 0;
};

struct VerifyResult
{
    /** Graph fully explored and no cover reachable: the test is
     *  verified by assumptions alone (§4.1). */
    bool coverUnreachable = false;
    /** A covering trace of the forbidden outcome exists. */
    bool coverReached = false;
    std::optional<WitnessTrace> coverWitness;

    std::vector<PropertyResult> properties;

    std::size_t graphNodes = 0;
    std::uint64_t graphEdges = 0;
    bool graphComplete = false;
    std::uint32_t graphDepth = 0;
    /** Exploration was served from a GraphCache instead of run. */
    bool graphFromCache = false;

    /** Packed state-arena bytes of the explored graph, and what the
     *  pre-packing one-word-per-slot encoding would have used. */
    std::size_t arenaBytes = 0;
    std::size_t arenaBytesUnpacked = 0;

    /** Includes on-the-fly monitor stepping when earlyFalsify ran. */
    double exploreSeconds = 0.0;
    double checkSeconds = 0.0;
    /** Parallel lanes the property checks actually used. */
    std::size_t checkJobs = 1;

    /** Back-end that produced this result ("explicit", "bmc", or
     *  "portfolio:<winner>"). */
    std::string engineUsed = "explicit";
    /** The run was abandoned via EngineConfig::cancel; verdicts are
     *  partial and must not be consumed. */
    bool cancelled = false;

    /** BMC diagnostics (0 for the explicit engine). */
    std::size_t satVars = 0;
    std::size_t satClauses = 0;
    std::uint64_t satConflicts = 0;
    /** SAT-core counters (sat::Solver::Stats, summed over the sweep
     *  and induction solvers; 0 for the explicit engine). */
    std::uint64_t satSolves = 0;
    std::uint64_t satLearnedReuse = 0;
    std::uint64_t satFramesPushed = 0;
    std::uint64_t satFramesPopped = 0;

    int numProven() const;
    int numBounded() const;
    int numFalsified() const;
    /** Did verification succeed (no counterexample, no cover)? */
    bool clean() const;
};

/**
 * Run the engine. `assumptions` and `properties` reference predicate
 * ids in `preds`; `netlist` must outlive the call.
 *
 * With a non-null `cache`, the state-graph exploration is looked up
 * in (and published to) the cache; a cached graph from a larger
 * budget is viewed through GraphView at this config's budget, so all
 * results are bit-identical to a cache-less run.
 */
VerifyResult verify(const rtl::Netlist &netlist,
                    const sva::PredicateTable &preds,
                    const std::vector<Assumption> &assumptions,
                    const std::vector<sva::Property> &properties,
                    const EngineConfig &config,
                    GraphCache *cache);

inline VerifyResult
verify(const rtl::Netlist &netlist, const sva::PredicateTable &preds,
       const std::vector<Assumption> &assumptions,
       const std::vector<sva::Property> &properties,
       const EngineConfig &config)
{
    return verify(netlist, preds, assumptions, properties, config,
                  nullptr);
}

} // namespace rtlcheck::formal

#endif // RTLCHECK_FORMAL_ENGINE_HH
