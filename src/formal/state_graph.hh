/**
 * @file
 * Reachable-state-graph exploration under assumptions.
 *
 * The explorer runs breadth-first from the (pinned) initial state,
 * trying every primary-input valuation each cycle — for Multi-V-scale
 * this is every arbiter switching pattern, the nondeterminism §5.2
 * says the property verifier must cover. States are deduplicated by
 * their flat word vectors; every surviving transition records the
 * truth of all registered SVA predicates, so property checking later
 * needs no RTL evaluation at all.
 */

#ifndef RTLCHECK_FORMAL_STATE_GRAPH_HH
#define RTLCHECK_FORMAL_STATE_GRAPH_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "formal/assumptions.hh"
#include "rtl/netlist.hh"
#include "sva/predicates.hh"

namespace rtlcheck::formal {

/** One outgoing transition of a state-graph node. Predicate truths
 *  are interned: few distinct masks occur across millions of edges,
 *  so edges store an index into StateGraph::maskOf() instead of the
 *  32-byte mask itself. */
struct GraphEdge
{
    std::uint32_t dst = 0;
    std::uint32_t maskId = 0;   ///< interned mask; StateGraph::maskOf
    std::uint8_t input = 0;     ///< flattened input valuation
};

struct CoverHit
{
    bool reached = false;
    std::uint32_t node = 0;     ///< source node of the covering cycle
    std::uint8_t input = 0;
};

struct ExploreLimits
{
    /** Maximum distinct states to expand; 0 means unlimited. */
    std::size_t maxNodes = 0;
};

class StateGraph
{
  public:
    /** BFS exploration; see file comment. `pins` overwrite state
     *  words of the reset state before exploration begins. */
    StateGraph(const rtl::Netlist &netlist,
               const std::vector<Assumption> &assumptions,
               const sva::PredicateTable &preds,
               const ExploreLimits &limits);

    std::size_t numNodes() const { return _edges.size(); }
    std::uint64_t numEdges() const { return _numEdges; }

    /** True iff every reachable state was expanded. */
    bool complete() const { return _complete; }

    /** All traces of up to this many cycles are fully represented,
     *  even when exploration was truncated. */
    std::uint32_t exploredDepth() const { return _exploredDepth; }

    const std::vector<GraphEdge> &outEdges(std::uint32_t node) const
    {
        return _edges[node];
    }

    /** The interned predicate mask of an edge. */
    const sva::PredMask &maskOf(std::uint32_t mask_id) const
    {
        return _maskTable[mask_id];
    }

    /** Distinct predicate masks seen across all edges. */
    std::size_t numDistinctMasks() const { return _maskTable.size(); }

    std::uint32_t depthOf(std::uint32_t node) const
    {
        return _depth[node];
    }

    /** Cover results, one per FinalValueCover assumption (in input
     *  order). */
    const std::vector<CoverHit> &coverHits() const { return _covers; }

    /** Reconstruct the per-cycle input choices of a path from the
     *  initial state to `node` (inclusive of reaching it). */
    std::vector<std::uint8_t> pathTo(std::uint32_t node) const;

    /** The pinned initial state. */
    const rtl::StateVec &initialState() const { return _initial; }

    /** Total number of distinct input valuations per cycle. */
    unsigned numInputCombos() const { return _numInputs; }

    /** Decode a flattened input valuation into an InputVec. */
    rtl::InputVec decodeInput(std::uint8_t combo) const;

  private:
    std::uint32_t internMask(const sva::PredMask &mask);

    const rtl::Netlist &_netlist;
    rtl::StateVec _initial;
    std::vector<std::vector<GraphEdge>> _edges;
    std::vector<std::uint32_t> _depth;
    std::vector<std::pair<std::uint32_t, std::uint8_t>> _parent;
    std::vector<CoverHit> _covers;
    std::vector<std::uint32_t> _stateArena;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>
        _dedup;
    std::vector<sva::PredMask> _maskTable;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>
        _maskIndex;
    std::uint64_t _numEdges = 0;
    bool _complete = false;
    std::uint32_t _exploredDepth = 0;
    unsigned _numInputs = 1;
    std::vector<unsigned> _inputWidths;
};

} // namespace rtlcheck::formal

#endif // RTLCHECK_FORMAL_STATE_GRAPH_HH
