/**
 * @file
 * Reachable-state-graph exploration under assumptions.
 *
 * The explorer runs breadth-first from the (pinned) initial state,
 * trying every primary-input valuation each cycle — for Multi-V-scale
 * this is every arbiter switching pattern, the nondeterminism §5.2
 * says the property verifier must cover. States are deduplicated by
 * their flat word vectors; every surviving transition records the
 * truth of all registered SVA predicates, so property checking later
 * needs no RTL evaluation at all.
 *
 * Exploration invariants the rest of the formal layer relies on:
 * node ids are assigned in discovery order, the frontier is FIFO, and
 * therefore nodes are *expanded* in id order. A run truncated at
 * `maxNodes` is an exact prefix of the unlimited run — which is what
 * lets a complete graph serve a bounded request through `GraphView`
 * without re-exploring anything.
 *
 * Exploration is level-synchronized and optionally parallel: every
 * (frontier node, input combo) of one BFS depth is evaluated across
 * ThreadPool lanes into per-task staging slots, with duplicate states
 * detected through a CAS-claimed open-addressed table; a serial
 * commit pass then walks the tasks in (node, combo) order and assigns
 * ids on first encounter — exactly the order the serial FIFO loop
 * would have used — so node ids, depths, parents, witness paths, and
 * cover hits are bit-identical for every `jobs` value (see DESIGN.md,
 * "Parallel exploration & packed states"). States are stored
 * bit-packed (rtl::StatePacking), cutting arena bytes and hash and
 * compare cost.
 */

#ifndef RTLCHECK_FORMAL_STATE_GRAPH_HH
#define RTLCHECK_FORMAL_STATE_GRAPH_HH

#include <cstdint>
#include <vector>

#include "formal/assumptions.hh"
#include "rtl/netlist.hh"
#include "sva/predicates.hh"

namespace rtlcheck::formal {

/** One outgoing transition of a state-graph node. Predicate truths
 *  are interned: few distinct masks occur across millions of edges,
 *  so edges store an index into StateGraph::maskOf() instead of the
 *  32-byte mask itself. */
struct GraphEdge
{
    std::uint32_t dst = 0;
    std::uint32_t maskId = 0;   ///< interned mask; StateGraph::maskOf
    std::uint8_t input = 0;     ///< flattened input valuation
};

struct CoverHit
{
    bool reached = false;
    std::uint32_t node = 0;     ///< source node of the covering cycle
    std::uint8_t input = 0;
};

struct ExploreLimits
{
    /** Maximum distinct states to expand; 0 means unlimited. */
    std::size_t maxNodes = 0;
    /** Parallel lanes for frontier expansion; 1 = serial, 0 =
     *  ThreadPool::defaultJobs(). The graph is bit-identical at
     *  every setting, so `jobs` is not part of any cache key. */
    std::size_t jobs = 1;
};

class StateGraph;

/**
 * Hook into a running exploration. onLevelCommitted() fires on the
 * constructing thread after each BFS level's commit pass: every edge
 * of nodes with id < `expanded_nodes` is final, node ids are stable
 * (never reassigned), and the mask table only ever grows. The engine
 * uses this to step property monitors on the fly and report hard
 * counterexamples before the fixpoint (early falsification).
 */
class ExploreObserver
{
  public:
    virtual ~ExploreObserver() = default;

    /** `depth` is the BFS depth of the level just expanded. */
    virtual void onLevelCommitted(const StateGraph &graph,
                                  std::size_t expanded_nodes,
                                  std::uint32_t depth) = 0;
};

class StateGraph
{
  public:
    /** BFS exploration; see file comment. `pins` overwrite state
     *  words of the reset state before exploration begins. A non-null
     *  `observer` is called after every committed level. */
    StateGraph(const rtl::Netlist &netlist,
               const std::vector<Assumption> &assumptions,
               const sva::PredicateTable &preds,
               const ExploreLimits &limits,
               ExploreObserver *observer = nullptr);

    std::size_t numNodes() const { return _edges.size(); }
    std::uint64_t numEdges() const { return _numEdges; }

    /** Nodes actually expanded (= numNodes() when complete). Nodes
     *  with id >= expandedNodes() were discovered but not expanded. */
    std::size_t expandedNodes() const { return _expanded; }

    /** True iff every reachable state was expanded. */
    bool complete() const { return _complete; }

    /** All traces of up to this many cycles are fully represented,
     *  even when exploration was truncated. */
    std::uint32_t exploredDepth() const { return _exploredDepth; }

    const std::vector<GraphEdge> &outEdges(std::uint32_t node) const
    {
        return _edges[node];
    }

    /** The interned predicate mask of an edge. */
    const sva::PredMask &maskOf(std::uint32_t mask_id) const
    {
        return _maskTable[mask_id];
    }

    /** Distinct predicate masks seen across all edges. */
    std::size_t numDistinctMasks() const { return _maskTable.size(); }

    /** The whole interned-mask table — the edge alphabet, indexed by
     *  GraphEdge::maskId (see PropertyRuntime::compileAlphabet). */
    const std::vector<sva::PredMask> &maskTable() const
    {
        return _maskTable;
    }

    std::uint32_t depthOf(std::uint32_t node) const
    {
        return _depth[node];
    }

    /** Cover results, one per FinalValueCover assumption (in input
     *  order). */
    const std::vector<CoverHit> &coverHits() const { return _covers; }

    /** Reconstruct the per-cycle input choices of a path from the
     *  initial state to `node` (inclusive of reaching it). */
    std::vector<std::uint8_t> pathTo(std::uint32_t node) const;

    /** The pinned initial state. */
    const rtl::StateVec &initialState() const { return _initial; }

    /** Total number of distinct input valuations per cycle. */
    unsigned numInputCombos() const { return _numInputs; }

    /** Decode a flattened input valuation into an InputVec (indexes
     *  the table precomputed at construction). */
    const rtl::InputVec &decodeInput(std::uint8_t combo) const
    {
        return _inputTable[combo];
    }

    /** Words of one bit-packed state in the arena. */
    std::size_t packedWords() const { return _packedWords; }

    /** The packing the arena uses (copied from the netlist, so the
     *  graph stays self-contained). */
    const rtl::StatePacking &packing() const { return _packing; }

    /** A node's stored state, bit-packed (`packedWords()` words). */
    const std::uint32_t *packedStateOf(std::uint32_t node) const
    {
        return _stateArena.data() +
               static_cast<std::size_t>(node) * _packedWords;
    }

    /** Bytes the packed state arena occupies. */
    std::size_t arenaBytes() const
    {
        return _stateArena.size() * sizeof(std::uint32_t);
    }

    /** Bytes the arena would occupy without packing (one uint32_t
     *  per state slot, the pre-packing encoding). */
    std::size_t unpackedArenaBytes() const
    {
        return numNodes() * _initial.size() * sizeof(std::uint32_t);
    }

    /** Approximate resident footprint (arena + edges + per-node
     *  metadata + mask table), for cache budgeting. */
    std::size_t memoryBytes() const;

    /** Replay pathTo(node) through `netlist` from the pinned initial
     *  state and compare the resulting state against the stored
     *  packed state — the witness-integrity cross-check. `netlist`
     *  must be behaviorally equivalent to the one explored (same
     *  fingerprint family). */
    bool replayMatches(const rtl::Netlist &netlist,
                       std::uint32_t node) const;

  private:
    /** Deserialization constructs an empty graph and fills every
     *  field from the artifact bytes (graph_serial.hh). */
    friend class GraphSerializer;
    StateGraph() = default;

    // No reference to the netlist is retained: a cached graph may
    // outlive the netlist instance it was explored with (GraphCache
    // serves graphs across independently elaborated netlists).
    rtl::StateVec _initial;
    rtl::StatePacking _packing;
    std::size_t _packedWords = 0;
    std::vector<std::vector<GraphEdge>> _edges;
    std::vector<std::uint32_t> _depth;
    std::vector<std::pair<std::uint32_t, std::uint8_t>> _parent;
    std::vector<CoverHit> _covers;
    std::vector<std::uint32_t> _stateArena;
    std::vector<sva::PredMask> _maskTable;
    std::uint64_t _numEdges = 0;
    std::size_t _expanded = 0;
    bool _complete = false;
    std::uint32_t _exploredDepth = 0;
    unsigned _numInputs = 1;
    std::vector<unsigned> _inputWidths;
    /// all 2^k decoded input valuations, indexed by flattened combo
    std::vector<rtl::InputVec> _inputTable;
};

/**
 * A (possibly truncated) read-only view of a StateGraph, presenting
 * exactly what an exploration bounded at `maxNodes` would have
 * produced. Because truncated BFS runs are prefixes of fuller runs
 * (see the StateGraph invariants above), a complete graph can serve
 * any bounded request: the view clips out-edges of nodes past the
 * cutoff, recomputes node/edge counts and the explored depth for the
 * prefix, and filters cover hits discovered past the cutoff. Verdicts
 * derived from a view are bit-identical to a fresh bounded
 * exploration.
 */
class GraphView
{
  public:
    GraphView() = default;

    /** View `graph` as if explored with `maxNodes` (0 = as-is). */
    GraphView(const StateGraph *graph, std::size_t max_nodes);

    bool truncated() const { return _truncated; }

    std::size_t numNodes() const { return _numNodes; }
    std::uint64_t numEdges() const { return _numEdges; }
    bool complete() const { return _complete; }
    std::uint32_t exploredDepth() const { return _exploredDepth; }

    const std::vector<GraphEdge> &
    outEdges(std::uint32_t node) const
    {
        return node < _cutoff ? _graph->outEdges(node) : _noEdges;
    }

    const sva::PredMask &
    maskOf(std::uint32_t mask_id) const
    {
        return _graph->maskOf(mask_id);
    }

    /** The underlying graph's edge alphabet. A truncated view keeps
     *  the full table; letters only referenced past the cutoff are
     *  simply never consumed. */
    const std::vector<sva::PredMask> &maskTable() const
    {
        return _graph->maskTable();
    }

    const std::vector<CoverHit> &
    coverHits() const
    {
        return _truncated ? _coverStorage : _graph->coverHits();
    }

    std::vector<std::uint8_t>
    pathTo(std::uint32_t node) const
    {
        return _graph->pathTo(node);
    }

    const StateGraph &graph() const { return *_graph; }

  private:
    const StateGraph *_graph = nullptr;
    std::size_t _cutoff = 0;
    bool _truncated = false;
    std::size_t _numNodes = 0;
    std::uint64_t _numEdges = 0;
    bool _complete = false;
    std::uint32_t _exploredDepth = 0;
    std::vector<CoverHit> _coverStorage;

    static const std::vector<GraphEdge> _noEdges;
};

} // namespace rtlcheck::formal

#endif // RTLCHECK_FORMAL_STATE_GRAPH_HH
