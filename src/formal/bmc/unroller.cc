#include "formal/bmc/unroller.hh"

#include "common/logging.hh"

namespace rtlcheck::formal::bmc {

namespace {

bool
fitsWidth(std::uint64_t value, unsigned width)
{
    return width >= 64 || (value >> width) == 0;
}

} // namespace

Unroller::Unroller(sat::CnfBuilder &cnf, const rtl::Netlist &netlist,
                   const sva::PredicateTable &preds,
                   const std::vector<Assumption> &assumptions)
    : _cnf(cnf), _netlist(netlist), _preds(preds),
      _assumptions(assumptions)
{
    _slotWidths.assign(netlist.stateWords(), 0);
    const auto &regs = netlist.regs();
    for (std::size_t i = 0; i < regs.size(); ++i)
        _slotWidths[i] = regs[i].width;
    const auto &mems = netlist.mems();
    for (std::size_t i = 0; i < mems.size(); ++i) {
        if (!netlist.memInState(static_cast<std::uint32_t>(i)))
            continue;
        const rtl::MemHandle handle{static_cast<std::uint32_t>(i)};
        for (std::uint32_t w = 0; w < mems[i].words; ++w)
            _slotWidths[netlist.stateSlotOfMemWord(handle, w)] =
                mems[i].width;
    }
    for (unsigned w : _slotWidths)
        RC_ASSERT(w >= 1 && w <= 32, "bad state-slot width");
}

void
Unroller::pushInitialFrame()
{
    RC_ASSERT(_frames.empty(), "initial frame must be frame 0");
    rtl::StateVec init = _netlist.initialState();
    for (const Assumption &a : _assumptions) {
        if (a.kind != Assumption::Kind::InitialPin)
            continue;
        RC_ASSERT(a.stateSlot < init.size());
        init[a.stateSlot] = a.value;
    }
    Frame f;
    f.state.reserve(init.size());
    for (std::size_t i = 0; i < init.size(); ++i) {
        RC_ASSERT(fitsWidth(init[i], _slotWidths[i]),
                  "pinned initial state exceeds declared widths");
        f.state.push_back(_cnf.bvConst(init[i], _slotWidths[i]));
    }
    _frames.push_back(std::move(f));
}

std::vector<sat::Lit>
Unroller::pushPinnedFrame()
{
    RC_ASSERT(_frames.empty(), "pinned frame must be frame 0");
    rtl::StateVec init = _netlist.initialState();
    for (const Assumption &a : _assumptions) {
        if (a.kind != Assumption::Kind::InitialPin)
            continue;
        RC_ASSERT(a.stateSlot < init.size());
        init[a.stateSlot] = a.value;
    }
    Frame f;
    f.state.reserve(init.size());
    std::vector<sat::Lit> pins;
    for (std::size_t i = 0; i < init.size(); ++i) {
        RC_ASSERT(fitsWidth(init[i], _slotWidths[i]),
                  "pinned initial state exceeds declared widths");
        sat::Bits bits = _cnf.bvFresh(_slotWidths[i]);
        for (unsigned b = 0; b < _slotWidths[i]; ++b)
            pins.push_back((init[i] >> b) & 1 ? bits[b] : ~bits[b]);
        f.state.push_back(std::move(bits));
    }
    _frames.push_back(std::move(f));
    return pins;
}

void
Unroller::pushFreeFrame()
{
    RC_ASSERT(_frames.empty(), "free frame must be frame 0");
    Frame f;
    f.state.reserve(_slotWidths.size());
    for (unsigned w : _slotWidths)
        f.state.push_back(_cnf.bvFresh(w));
    _frames.push_back(std::move(f));
}

void
Unroller::pushSharedFrame(const Unroller &other)
{
    RC_ASSERT(_frames.empty(), "shared frame must be frame 0");
    RC_ASSERT(&_cnf == &other._cnf,
              "shared frames require one CnfBuilder");
    RC_ASSERT(!other._frames.empty(),
              "other unroller has no frame to share");
    RC_ASSERT(_slotWidths == other._slotWidths,
              "shared frames require identical state layouts");
    Frame f;
    f.state = other._frames[0].state;
    _frames.push_back(std::move(f));
}

void
Unroller::attachSharedInputs(std::size_t k, const Unroller &other)
{
    RC_ASSERT(k < _frames.size());
    Frame &f = _frames[k];
    RC_ASSERT(!f.evaluated, "inputs already attached to frame");
    RC_ASSERT(&_cnf == &other._cnf,
              "shared inputs require one CnfBuilder");
    RC_ASSERT(k < other._frames.size() && other._frames[k].evaluated,
              "other unroller's frame has no inputs to share");
    RC_ASSERT(_netlist.inputs().size()
                  == other._netlist.inputs().size(),
              "shared inputs require identical input layouts");
    f.inputs = other._frames[k].inputs;
    evalFrame(f);
    f.evaluated = true;
}

void
Unroller::attachInputs(std::size_t k)
{
    RC_ASSERT(k < _frames.size());
    Frame &f = _frames[k];
    RC_ASSERT(!f.evaluated, "inputs already attached to frame");
    const auto &inputs = _netlist.inputs();
    f.inputs.reserve(inputs.size());
    for (const rtl::InputDecl &in : inputs)
        f.inputs.push_back(_cnf.bvFresh(in.width));
    evalFrame(f);
    f.evaluated = true;
}

void
Unroller::evalFrame(Frame &f)
{
    // 1:1 translation of Netlist::eval(). Operand handles in the
    // optimized node list are optimized-space, as are the
    // pre-remapped reg.next / write-port handles, so `values` is
    // indexed directly by Signal::id throughout.
    const auto &nodes = _netlist.nodes();
    f.values.resize(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const rtl::ExprNode &e = nodes[i];
        const std::uint32_t w = e.width;
        sat::Bits r;
        switch (e.op) {
          case rtl::Op::Const:
            RC_ASSERT(fitsWidth(e.imm, w), "constant exceeds width");
            r = _cnf.bvConst(e.imm, w);
            break;
          case rtl::Op::Input:
            r = _cnf.bvZext(f.inputs[e.inputSlot], w);
            break;
          case rtl::Op::RegQ:
            // eval() reads the slot unmasked; the slot value fits
            // its declared width, so zext is exact as long as the
            // node is at least as wide.
            RC_ASSERT(w >= _slotWidths[e.stateSlot]);
            r = _cnf.bvZext(f.state[e.stateSlot], w);
            break;
          case rtl::Op::MemRead: {
            const rtl::MemDecl &m = _netlist.mems()[e.memId];
            RC_ASSERT(w >= m.width);
            const sat::Bits &addr = f.values[e.a.id];
            const bool in_state = _netlist.memInState(e.memId);
            const rtl::MemHandle handle{e.memId};
            // Out-of-range addresses read 0, which the accumulator
            // base provides when no word address matches.
            r = _cnf.bvConst(0, w);
            for (std::uint32_t word = 0; word < m.words; ++word) {
                sat::Lit sel =
                    _cnf.bvEq(addr, _cnf.bvConst(word, 32));
                sat::Bits value;
                if (in_state) {
                    value = _cnf.bvZext(
                        f.state[_netlist.stateSlotOfMemWord(handle,
                                                            word)],
                        w);
                } else {
                    RC_ASSERT(fitsWidth(m.init[word], m.width),
                              "ROM init word exceeds width");
                    value = _cnf.bvConst(m.init[word], w);
                }
                r = _cnf.bvMux(sel, value, r, w);
            }
            break;
          }
          case rtl::Op::Not:
            r = _cnf.bvNot(f.values[e.a.id], w);
            break;
          case rtl::Op::And:
            RC_ASSERT(nodes[e.a.id].width <= w &&
                      nodes[e.b.id].width <= w);
            r = _cnf.bvAnd(f.values[e.a.id], f.values[e.b.id], w);
            break;
          case rtl::Op::Or:
            RC_ASSERT(nodes[e.a.id].width <= w &&
                      nodes[e.b.id].width <= w);
            r = _cnf.bvOr(f.values[e.a.id], f.values[e.b.id], w);
            break;
          case rtl::Op::Xor:
            RC_ASSERT(nodes[e.a.id].width <= w &&
                      nodes[e.b.id].width <= w);
            r = _cnf.bvXor(f.values[e.a.id], f.values[e.b.id], w);
            break;
          case rtl::Op::Add:
            r = _cnf.bvAdd(f.values[e.a.id], f.values[e.b.id], w);
            break;
          case rtl::Op::Sub:
            r = _cnf.bvSub(f.values[e.a.id], f.values[e.b.id], w);
            break;
          case rtl::Op::Eq:
            r = _cnf.bvZext(
                {_cnf.bvEq(f.values[e.a.id], f.values[e.b.id])}, w);
            break;
          case rtl::Op::Ne:
            r = _cnf.bvZext(
                {~_cnf.bvEq(f.values[e.a.id], f.values[e.b.id])}, w);
            break;
          case rtl::Op::Ult:
            r = _cnf.bvZext(
                {_cnf.bvUlt(f.values[e.a.id], f.values[e.b.id])}, w);
            break;
          case rtl::Op::Mux:
            RC_ASSERT(nodes[e.a.id].width <= w &&
                      nodes[e.b.id].width <= w);
            r = _cnf.bvMux(_cnf.bvNonZero(f.values[e.c.id]),
                           f.values[e.a.id], f.values[e.b.id], w);
            break;
          case rtl::Op::Concat:
            r = _cnf.bvConcat(f.values[e.a.id], f.values[e.b.id],
                              nodes[e.b.id].width, w);
            break;
          case rtl::Op::Slice:
            r = _cnf.bvSlice(f.values[e.a.id], e.imm, w);
            break;
          case rtl::Op::ShlC:
            r = _cnf.bvShlC(f.values[e.a.id], e.imm, w);
            break;
          case rtl::Op::ShrC:
            r = _cnf.bvShrC(f.values[e.a.id], e.imm, w);
            break;
        }
        f.values[i] = std::move(r);
    }

    // Predicate truth literals: bit i of the PredMask is set iff the
    // predicate signal's value is nonzero.
    const int npreds = _preds.size();
    f.preds.resize(static_cast<std::size_t>(npreds));
    for (int p = 0; p < npreds; ++p) {
        const std::uint32_t node =
            _netlist.nodeIdOf(_preds.signalOf(p));
        f.preds[static_cast<std::size_t>(p)] =
            _cnf.bvNonZero(f.values[node]);
    }
}

void
Unroller::assertValidCycle(std::size_t k)
{
    const Frame &f = _frames[k];
    RC_ASSERT(f.evaluated, "assertValidCycle needs inputs attached");
    for (const Assumption &a : _assumptions) {
        // FinalValueCover doubles as an implication: StateGraph
        // prunes edges whose antecedent holds with a false
        // consequent, for covers and implications alike.
        if (a.kind == Assumption::Kind::InitialPin)
            continue;
        _cnf.solver().addClause(
            ~f.preds[static_cast<std::size_t>(a.antecedent)],
            f.preds[static_cast<std::size_t>(a.consequent)]);
    }
}

void
Unroller::pushTransition()
{
    RC_ASSERT(!_frames.empty());
    const std::size_t k = _frames.size() - 1;
    RC_ASSERT(_frames[k].evaluated,
              "pushTransition needs inputs attached");
    Frame next;
    next.state.resize(_slotWidths.size());
    for (std::size_t slot = 0; slot < _slotWidths.size(); ++slot)
        next.state[slot] = stateSlotImage(_frames[k], slot);
    _frames.push_back(std::move(next));
}

sat::Bits
Unroller::stateSlotImage(const Frame &f, std::size_t slot) const
{
    const auto &regs = _netlist.regs();
    if (slot < regs.size()) {
        // nextState() stores the next-value unmasked; it fits the
        // node's width, which construction keeps equal to the
        // register's, so truncation via bvZext is exact.
        return _cnf.bvZext(f.values[regs[slot].next.id],
                           _slotWidths[slot]);
    }
    // Memory word: apply the write ports in declaration order (the
    // last enabled writer of a word wins, as in nextState()) as a
    // mux chain seeded with the held value.
    const auto &mems = _netlist.mems();
    for (std::size_t i = 0; i < mems.size(); ++i) {
        if (!_netlist.memInState(static_cast<std::uint32_t>(i)))
            continue;
        const rtl::MemDecl &m = mems[i];
        const rtl::MemHandle handle{static_cast<std::uint32_t>(i)};
        const std::size_t base = _netlist.stateSlotOfMemWord(handle, 0);
        if (slot < base || slot >= base + m.words)
            continue;
        const std::uint32_t word =
            static_cast<std::uint32_t>(slot - base);
        sat::Bits acc = f.state[slot];
        for (const rtl::MemWritePort &p : m.writePorts) {
            sat::Lit hit = _cnf.mkAnd(
                _cnf.bvNonZero(f.values[p.enable.id]),
                _cnf.bvEq(f.values[p.addr.id],
                          _cnf.bvConst(word, 32)));
            acc = _cnf.bvMux(hit,
                             _cnf.bvZext(f.values[p.data.id],
                                         _slotWidths[slot]),
                             acc, _slotWidths[slot]);
        }
        return acc;
    }
    RC_PANIC("state slot outside register and memory layout");
}

sat::Lit
Unroller::predLit(std::size_t k, int pred) const
{
    const Frame &f = _frames[k];
    RC_ASSERT(f.evaluated, "predLit needs inputs attached");
    return f.preds[static_cast<std::size_t>(pred)];
}

sat::Lit
Unroller::coverHitLit(std::size_t k, const Assumption &cover)
{
    const Frame &f = _frames[k];
    RC_ASSERT(f.evaluated, "coverHitLit needs inputs attached");
    return _cnf.mkAnd(
        f.preds[static_cast<std::size_t>(cover.antecedent)],
        f.preds[static_cast<std::size_t>(cover.consequent)]);
}

std::uint8_t
Unroller::decodeInput(std::size_t k,
                      const sat::Solver &solver) const
{
    const Frame &f = _frames[k];
    RC_ASSERT(f.evaluated, "decodeInput needs inputs attached");
    unsigned combo = 0;
    unsigned shift = 0;
    for (const sat::Bits &in : f.inputs) {
        for (std::size_t b = 0; b < in.size(); ++b)
            if (solver.modelTrue(in[b]))
                combo |= 1u << (shift + b);
        shift += static_cast<unsigned>(in.size());
    }
    RC_ASSERT(shift <= 8, "too many free input bits for combo bytes");
    return static_cast<std::uint8_t>(combo);
}

namespace {

std::uint32_t
decodeBits(const sat::Bits &bits, const sat::Solver &solver)
{
    std::uint32_t v = 0;
    for (std::size_t b = 0; b < bits.size(); ++b)
        if (solver.modelTrue(bits[b]))
            v |= std::uint32_t(1) << b;
    return v;
}

} // namespace

std::uint32_t
Unroller::modelNodeValue(std::size_t k, std::uint32_t node,
                         const sat::Solver &solver) const
{
    return decodeBits(_frames[k].values[node], solver);
}

std::uint32_t
Unroller::modelStateValue(std::size_t k, std::size_t slot,
                          const sat::Solver &solver) const
{
    return decodeBits(_frames[k].state[slot], solver);
}

void
Unroller::appendStateLits(std::size_t k,
                          std::vector<sat::Lit> &out) const
{
    for (const sat::Bits &slot : _frames[k].state)
        out.insert(out.end(), slot.begin(), slot.end());
}

} // namespace rtlcheck::formal::bmc
