/**
 * @file
 * SAT-based bounded model checking + k-induction back-end.
 *
 * Produces the same VerifyResult/PropertyResult types as the
 * explicit-state engine, with identical witness conventions:
 *   - Falsified: per-cycle input-combo bytes the simulator replays
 *     (depth-d failure -> d bytes, cycles 0..d-1);
 *   - cover reached: bytes for cycles 0..k where the hit fires in
 *     cycle k;
 *   - Proven: closed by k-induction (PropertyResult::inductionK);
 *   - Bounded: no counterexample within EngineConfig::bmcDepth
 *     cycles and induction did not close the proof.
 *
 * The per-depth query order is chosen so a deeper frame's constraints
 * can never mask a shallower verdict, mirroring the explicit engine's
 * check-status-before-expanding discipline: the depth-d property
 * query runs while frame d carries only its state image (no inputs,
 * no cycle-d implications), and the cycle-d cover query runs after
 * the cycle's implications are hard clauses (StateGraph records
 * covers on unpruned edges only).
 */

#ifndef RTLCHECK_FORMAL_BMC_BMC_ENGINE_HH
#define RTLCHECK_FORMAL_BMC_BMC_ENGINE_HH

#include "formal/engine.hh"

namespace rtlcheck::formal {

/** Run the BMC + k-induction back-end (EngineConfig::bmcDepth,
 *  inductionDepth, cancel). Same contract as verify(). */
VerifyResult verifyBmc(const rtl::Netlist &netlist,
                       const sva::PredicateTable &preds,
                       const std::vector<Assumption> &assumptions,
                       const std::vector<sva::Property> &properties,
                       const EngineConfig &config);

} // namespace rtlcheck::formal

#endif // RTLCHECK_FORMAL_BMC_BMC_ENGINE_HH
