#include "formal/bmc/bmc_engine.hh"

#include <chrono>
#include <map>
#include <memory>
#include <utility>

#include "common/logging.hh"
#include "formal/bmc/unroller.hh"
#include "sat/cnf.hh"
#include "sva/monitor_cnf.hh"

namespace rtlcheck::formal {

namespace {

using Clock = std::chrono::steady_clock;

double
elapsedSeconds(Clock::time_point since)
{
    return std::chrono::duration<double>(Clock::now() - since)
        .count();
}

/** One property's share of the BMC sweep. */
struct PropTrack
{
    std::shared_ptr<const sva::PropertyRuntime> runtime;
    std::unique_ptr<sva::MonitorCnf> monitor;
    sva::MonitorCnf::State state;  ///< after consuming d cycles
    PropertyResult result;
    bool resolved = false;
};

/** One property's share of the shared induction solver. */
struct IndProp
{
    PropTrack *track = nullptr;
    std::unique_ptr<sva::MonitorCnf> monitor;
    /** Monitor state per window frame 0..K. */
    std::vector<sva::MonitorCnf::State> states;
    sat::Lit act;  ///< activation literal gating this property's clauses
    bool active = true;
};

/** One cover's unreachability proof attempt. */
struct IndCover
{
    const Assumption *cover = nullptr;
    sat::Lit act;
    /** hit literal per window cycle 0..K-1. */
    std::vector<sat::Lit> hits;
    bool provenUnreachable = false;
};

/** Pairwise-distinctness lits over equal-length literal vectors. */
sat::Lit
vectorsDistinct(sat::CnfBuilder &cnf, const std::vector<sat::Lit> &a,
                const std::vector<sat::Lit> &b)
{
    RC_ASSERT(a.size() == b.size());
    std::vector<sat::Lit> diffs;
    diffs.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        diffs.push_back(cnf.mkXor(a[i], b[i]));
    return cnf.mkOrN(diffs);
}

} // namespace

VerifyResult
verifyBmc(const rtl::Netlist &netlist,
          const sva::PredicateTable &preds,
          const std::vector<Assumption> &assumptions,
          const std::vector<sva::Property> &properties,
          const EngineConfig &config)
{
    const auto t_start = Clock::now();
    VerifyResult result;
    result.engineUsed = "bmc";
    result.checkJobs = 1;

    sat::Solver solver;
    if (config.cancel)
        solver.setCancel(config.cancel);
    sat::CnfBuilder cnf(solver);
    bmc::Unroller unroller(cnf, netlist, preds, assumptions);
    unroller.pushInitialFrame();

    std::vector<PropTrack> tracks(properties.size());
    for (std::size_t i = 0; i < properties.size(); ++i) {
        PropTrack &t = tracks[i];
        t.runtime = properties[i].runtime
                        ? properties[i].runtime
                        : std::make_shared<const sva::PropertyRuntime>(
                              properties[i]);
        t.monitor =
            std::make_unique<sva::MonitorCnf>(cnf, *t.runtime);
        t.state = t.monitor->initialState();
        t.result.name = properties[i].name;
    }

    std::vector<const Assumption *> covers;
    for (const Assumption &a : assumptions)
        if (a.kind == Assumption::Kind::FinalValueCover)
            covers.push_back(&a);

    const std::size_t depth = config.bmcDepth;
    result.graphDepth = static_cast<std::uint32_t>(depth);

    auto cancelled = [&]() {
        result.cancelled = true;
        result.checkSeconds = elapsedSeconds(t_start);
        return result;
    };

    // ---- bounded sweep: depths 0..bmcDepth ----
    for (std::size_t d = 0; d <= depth; ++d) {
        if (config.cancel &&
            config.cancel->load(std::memory_order_relaxed))
            return cancelled();

        // Property status at depth d. Frame d carries only its state
        // image here — no inputs, no cycle-d implications — so a
        // depth-d failure can never be masked by deeper constraints.
        //
        // One aggregate "does any open property fail here?" query
        // filters the depth first: on a correct design that is a
        // single UNSAT per depth instead of one solve per property.
        // Only when the aggregate is SAT do per-property queries run
        // (the aggregate model usually resolves most of them for
        // free), so per-property shallowest-failure depths are
        // exactly the ones the one-query-per-property loop reports.
        std::vector<PropTrack *> open;
        std::vector<sat::Lit> open_failed;
        for (PropTrack &t : tracks) {
            if (t.resolved)
                continue;
            sat::Lit failed = t.monitor->failed(t.state);
            if (cnf.isConst(failed) && !cnf.constValue(failed))
                continue;
            open.push_back(&t);
            open_failed.push_back(failed);
        }
        bool depth_can_fail = !open.empty();
        if (depth_can_fail) {
            const sat::Result r =
                solver.solve({cnf.mkOrN(open_failed)});
            if (r == sat::Result::Unknown)
                return cancelled();
            depth_can_fail = r == sat::Result::Sat;
            if (depth_can_fail) {
                // Everything the aggregate model already falsifies
                // shares its witness; no further queries for those.
                for (std::size_t i = 0; i < open.size(); ++i) {
                    if (!solver.modelTrue(open_failed[i]))
                        continue;
                    PropTrack &t = *open[i];
                    t.resolved = true;
                    t.result.status = ProofStatus::Falsified;
                    WitnessTrace wit;
                    for (std::size_t j = 0; j < d; ++j)
                        wit.inputs.push_back(
                            unroller.decodeInput(j, solver));
                    t.result.counterexample = std::move(wit);
                }
            }
        }
        for (std::size_t i = 0; depth_can_fail && i < open.size();
             ++i) {
            PropTrack &t = *open[i];
            if (t.resolved)
                continue;
            const auto t_solve = Clock::now();
            const sat::Result r = solver.solve({open_failed[i]});
            t.result.checkSeconds += elapsedSeconds(t_solve);
            if (r == sat::Result::Unknown)
                return cancelled();
            if (r == sat::Result::Sat) {
                t.resolved = true;
                t.result.status = ProofStatus::Falsified;
                WitnessTrace wit;
                for (std::size_t j = 0; j < d; ++j)
                    wit.inputs.push_back(
                        unroller.decodeInput(j, solver));
                t.result.counterexample = std::move(wit);
            }
        }
        if (d == depth)
            break;

        // Open cycle d: inputs, cone, implications as hard clauses.
        unroller.attachInputs(d);
        unroller.assertValidCycle(d);

        // Cover query for cycle d, after the cycle's implications
        // (StateGraph records hits on unpruned edges only). Any
        // reachable cover suffices for the verdict; the first hit is
        // the shallowest and makes the best replay witness.
        if (!result.coverReached) {
            for (const Assumption *cover : covers) {
                sat::Lit hit = unroller.coverHitLit(d, *cover);
                if (cnf.isConst(hit) && !cnf.constValue(hit))
                    continue;
                const sat::Result r = solver.solve({hit});
                if (r == sat::Result::Unknown)
                    return cancelled();
                if (r == sat::Result::Sat) {
                    result.coverReached = true;
                    WitnessTrace wit;
                    for (std::size_t j = 0; j <= d; ++j)
                        wit.inputs.push_back(
                            unroller.decodeInput(j, solver));
                    result.coverWitness = std::move(wit);
                    break;
                }
            }
        }

        unroller.pushTransition();
        for (PropTrack &t : tracks)
            if (!t.resolved)
                t.state = t.monitor->step(t.state, [&](int pred) {
                    return unroller.predLit(d, pred);
                });
    }

    // ---- k-induction for whatever the sweep left open ----
    bool props_open = false;
    for (const PropTrack &t : tracks)
        props_open |= !t.resolved;
    const bool covers_open = !covers.empty() && !result.coverReached;

    std::size_t ind_vars = 0, ind_clauses = 0;
    std::uint64_t ind_conflicts = 0;
    if (config.inductionDepth > 0 && (props_open || covers_open)) {
        sat::Solver isolver;
        if (config.cancel)
            isolver.setCancel(config.cancel);
        sat::CnfBuilder icnf(isolver);
        bmc::Unroller iu(icnf, netlist, preds, assumptions);
        iu.pushFreeFrame();

        std::vector<IndProp> iprops;
        for (PropTrack &t : tracks) {
            if (t.resolved)
                continue;
            IndProp ip;
            ip.track = &t;
            ip.monitor =
                std::make_unique<sva::MonitorCnf>(icnf, *t.runtime);
            ip.states.push_back(ip.monitor->freeState());
            ip.act = icnf.freshLit();
            iprops.push_back(std::move(ip));
        }
        std::vector<IndCover> icovers;
        if (covers_open) {
            for (const Assumption *c : covers) {
                IndCover ic;
                ic.cover = c;
                ic.act = icnf.freshLit();
                icovers.push_back(std::move(ic));
            }
        }

        // Per-frame design-state literals and memoized pairwise
        // design distinctness, shared across properties and covers.
        std::vector<std::vector<sat::Lit>> frame_bits;
        frame_bits.emplace_back();
        iu.appendStateLits(0, frame_bits.back());
        std::map<std::pair<std::size_t, std::size_t>, sat::Lit>
            design_distinct;
        auto designDistinct = [&](std::size_t j, std::size_t k) {
            auto it = design_distinct.find({j, k});
            if (it != design_distinct.end())
                return it->second;
            sat::Lit l =
                vectorsDistinct(icnf, frame_bits[j], frame_bits[k]);
            design_distinct.emplace(std::make_pair(j, k), l);
            return l;
        };
        auto monitorBits = [](const IndProp &ip, std::size_t f) {
            std::vector<sat::Lit> bits;
            ip.monitor->appendStateLits(ip.states[f], bits);
            return bits;
        };

        // Base cases come from the sweep: no property fails within
        // bmcDepth cycles and no cover fires in cycles 0..bmcDepth-1,
        // so any window up to bmcDepth+1 has its base discharged.
        const std::size_t max_k =
            std::min(config.inductionDepth, depth + 1);
        for (std::size_t k = 1; k <= max_k; ++k) {
            if (config.cancel &&
                config.cancel->load(std::memory_order_relaxed))
                return cancelled();

            // Grow the window: cycle k-1 runs, frame k appears.
            iu.attachInputs(k - 1);
            iu.assertValidCycle(k - 1);
            for (IndCover &ic : icovers)
                ic.hits.push_back(iu.coverHitLit(k - 1, *ic.cover));
            iu.pushTransition();
            frame_bits.emplace_back();
            iu.appendStateLits(k, frame_bits.back());

            for (IndProp &ip : iprops) {
                if (!ip.active)
                    continue;
                PropTrack &t = *ip.track;
                // act -> the window prefix never fails...
                isolver.addClause(
                    ~ip.act, ~ip.monitor->failed(ip.states[k - 1]));
                ip.states.push_back(ip.monitor->step(
                    ip.states[k - 1],
                    [&](int pred) { return iu.predLit(k - 1, pred); }));
                // ...and its product states are pairwise distinct
                // (a minimal counterexample is loop-free: splicing
                // out a repeated product state replays the suffix
                // and yields a shorter one).
                const auto mk = monitorBits(ip, k);
                for (std::size_t j = 0; j < k; ++j)
                    isolver.addClause(
                        ~ip.act,
                        icnf.mkOr(designDistinct(j, k),
                                  vectorsDistinct(icnf,
                                                  monitorBits(ip, j),
                                                  mk)));
                const auto t_solve = Clock::now();
                const sat::Result r = isolver.solve(
                    {ip.act, ip.monitor->failed(ip.states[k])});
                t.result.checkSeconds += elapsedSeconds(t_solve);
                if (r == sat::Result::Unknown)
                    return cancelled();
                if (r == sat::Result::Unsat) {
                    ip.active = false;
                    t.resolved = true;
                    t.result.status = ProofStatus::Proven;
                    t.result.inductionK =
                        static_cast<std::uint32_t>(k);
                }
            }

            for (IndCover &ic : icovers) {
                if (ic.provenUnreachable)
                    continue;
                // Window cycles 0..k-1: no hit before the last
                // cycle, distinct design states, hit at cycle k-1.
                if (k >= 2)
                    isolver.addClause(~ic.act, ~ic.hits[k - 2]);
                for (std::size_t j = 0; j + 1 < k; ++j)
                    isolver.addClause(~ic.act,
                                      designDistinct(j, k - 1));
                const sat::Result r =
                    isolver.solve({ic.act, ic.hits[k - 1]});
                if (r == sat::Result::Unknown)
                    return cancelled();
                if (r == sat::Result::Unsat)
                    ic.provenUnreachable = true;
            }
        }

        if (!icovers.empty()) {
            bool all_unreachable = true;
            for (const IndCover &ic : icovers)
                all_unreachable &= ic.provenUnreachable;
            result.coverUnreachable = all_unreachable;
        }
        ind_vars = isolver.numVars();
        ind_clauses = isolver.numClauses();
        ind_conflicts = isolver.stats().conflicts;
    }

    for (PropTrack &t : tracks) {
        if (!t.resolved) {
            t.result.status = ProofStatus::Bounded;
            t.result.boundCycles = static_cast<std::uint32_t>(depth);
        }
        result.properties.push_back(std::move(t.result));
    }

    result.satVars = solver.numVars() + ind_vars;
    result.satClauses = solver.numClauses() + ind_clauses;
    result.satConflicts = solver.stats().conflicts + ind_conflicts;
    result.checkSeconds = elapsedSeconds(t_start);
    return result;
}

} // namespace rtlcheck::formal
