#include "formal/bmc/bmc_engine.hh"

#include <chrono>
#include <map>
#include <memory>
#include <utility>

#include "common/logging.hh"
#include "formal/bmc/unroller.hh"
#include "sat/cnf.hh"
#include "sva/monitor_cnf.hh"

namespace rtlcheck::formal {

namespace {

using Clock = std::chrono::steady_clock;

double
elapsedSeconds(Clock::time_point since)
{
    return std::chrono::duration<double>(Clock::now() - since)
        .count();
}

/** One property's share of the BMC sweep. The monitor/state pair is
 *  bound by the sweep mode: the incremental sweep keeps one monitor
 *  alive across all depths, the rebuild sweep re-encodes per depth
 *  and leaves these fields unused. */
struct PropTrack
{
    std::shared_ptr<const sva::PropertyRuntime> runtime;
    std::unique_ptr<sva::MonitorCnf> monitor;
    sva::MonitorCnf::State state;  ///< after consuming d cycles
    PropertyResult result;
    bool resolved = false;
};

/** One property's share of the shared induction solver. */
struct IndProp
{
    PropTrack *track = nullptr;
    std::unique_ptr<sva::MonitorCnf> monitor;
    /** Monitor state per window frame 0..K. */
    std::vector<sva::MonitorCnf::State> states;
    sat::Lit act;  ///< activation literal gating this property's clauses
    bool active = true;
};

/** One cover's unreachability proof attempt. */
struct IndCover
{
    const Assumption *cover = nullptr;
    sat::Lit act;
    /** hit literal per window cycle 0..K-1. */
    std::vector<sat::Lit> hits;
    bool provenUnreachable = false;
};

/** Pairwise-distinctness lits over equal-length literal vectors. */
sat::Lit
vectorsDistinct(sat::CnfBuilder &cnf, const std::vector<sat::Lit> &a,
                const std::vector<sat::Lit> &b)
{
    RC_ASSERT(a.size() == b.size());
    std::vector<sat::Lit> diffs;
    diffs.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        diffs.push_back(cnf.mkXor(a[i], b[i]));
    return cnf.mkOrN(diffs);
}

/** Fold one solver's counters into the result diagnostics. The
 *  rebuild sweep calls this once per depth, so its totals honestly
 *  reflect the re-encoding work the incremental sweep avoids. */
void
addSolverStats(VerifyResult &result, const sat::Solver &solver)
{
    result.satVars += solver.numVars();
    result.satClauses += solver.numClauses();
    const sat::Solver::Stats &s = solver.stats();
    result.satConflicts += s.conflicts;
    result.satSolves += s.solves;
    result.satLearnedReuse += s.learnedReuseHits;
    result.satFramesPushed += s.framesPushed;
    result.satFramesPopped += s.framesPopped;
}

/**
 * Property status at depth d. Frame d carries only its state image
 * here — no inputs, no cycle-d implications — so a depth-d failure
 * can never be masked by deeper constraints.
 *
 * One aggregate "does any open property fail here?" query filters
 * the depth first: on a correct design that is a single UNSAT per
 * depth instead of one solve per property. Only when the aggregate
 * is SAT do per-property queries run (the aggregate model usually
 * resolves most of them for free), so per-property
 * shallowest-failure depths are exactly the ones the
 * one-query-per-property loop reports.
 *
 * Both sweep modes funnel through this helper, so the query order —
 * and therefore every verdict class and witness depth — is
 * identical by construction. `monitors`/`states` run parallel to
 * `tracks`. Returns false on cancellation.
 */
bool
queryPropsAtDepth(std::vector<PropTrack> &tracks,
                  const std::vector<sva::MonitorCnf *> &monitors,
                  const std::vector<sva::MonitorCnf::State> &states,
                  sat::Solver &solver, sat::CnfBuilder &cnf,
                  const bmc::Unroller &unroller, std::size_t d)
{
    std::vector<std::size_t> open;
    std::vector<sat::Lit> open_failed;
    for (std::size_t i = 0; i < tracks.size(); ++i) {
        if (tracks[i].resolved)
            continue;
        sat::Lit failed = monitors[i]->failed(states[i]);
        if (cnf.isConst(failed) && !cnf.constValue(failed))
            continue;
        open.push_back(i);
        open_failed.push_back(failed);
    }
    bool depth_can_fail = !open.empty();
    if (depth_can_fail) {
        const sat::Result r = solver.solve({cnf.mkOrN(open_failed)});
        if (r == sat::Result::Unknown)
            return false;
        depth_can_fail = r == sat::Result::Sat;
        if (depth_can_fail) {
            // Everything the aggregate model already falsifies
            // shares its witness; no further queries for those.
            for (std::size_t i = 0; i < open.size(); ++i) {
                if (!solver.modelTrue(open_failed[i]))
                    continue;
                PropTrack &t = tracks[open[i]];
                t.resolved = true;
                t.result.status = ProofStatus::Falsified;
                WitnessTrace wit;
                for (std::size_t j = 0; j < d; ++j)
                    wit.inputs.push_back(
                        unroller.decodeInput(j, solver));
                t.result.counterexample = std::move(wit);
            }
        }
    }
    for (std::size_t i = 0; depth_can_fail && i < open.size(); ++i) {
        PropTrack &t = tracks[open[i]];
        if (t.resolved)
            continue;
        const auto t_solve = Clock::now();
        const sat::Result r = solver.solve({open_failed[i]});
        t.result.checkSeconds += elapsedSeconds(t_solve);
        if (r == sat::Result::Unknown)
            return false;
        if (r == sat::Result::Sat) {
            t.resolved = true;
            t.result.status = ProofStatus::Falsified;
            WitnessTrace wit;
            for (std::size_t j = 0; j < d; ++j)
                wit.inputs.push_back(unroller.decodeInput(j, solver));
            t.result.counterexample = std::move(wit);
        }
    }
    return true;
}

/**
 * Cover query for cycle d, after the cycle's implications
 * (StateGraph records hits on unpruned edges only). Any reachable
 * cover suffices for the verdict; the first hit is the shallowest
 * and makes the best replay witness. Returns false on cancellation.
 */
bool
queryCoversAtCycle(const std::vector<const Assumption *> &covers,
                   sat::Solver &solver, sat::CnfBuilder &cnf,
                   bmc::Unroller &unroller, std::size_t d,
                   VerifyResult &result)
{
    for (const Assumption *cover : covers) {
        sat::Lit hit = unroller.coverHitLit(d, *cover);
        if (cnf.isConst(hit) && !cnf.constValue(hit))
            continue;
        const sat::Result r = solver.solve({hit});
        if (r == sat::Result::Unknown)
            return false;
        if (r == sat::Result::Sat) {
            result.coverReached = true;
            WitnessTrace wit;
            for (std::size_t j = 0; j <= d; ++j)
                wit.inputs.push_back(unroller.decodeInput(j, solver));
            result.coverWitness = std::move(wit);
            break;
        }
    }
    return true;
}

/**
 * Depth-incremental sweep: one solver deepens across all of
 * 0..bmcDepth. The transition relation, cycle implications, and
 * monitor-step cones are permanent clauses — later depths build on
 * them — while each depth's query gates (failed-state literals, the
 * aggregate OR, cover-hit conjunctions) live in an activation frame
 * that is retired as soon as the depth is resolved, so retired
 * queries cost nothing at deeper depths but every learned clause
 * over the permanent CNF carries forward. Returns false on
 * cancellation.
 */
bool
sweepIncremental(const rtl::Netlist &netlist,
                 const sva::PredicateTable &preds,
                 const std::vector<Assumption> &assumptions,
                 const EngineConfig &config,
                 std::vector<PropTrack> &tracks,
                 const std::vector<const Assumption *> &covers,
                 VerifyResult &result)
{
    sat::Solver solver;
    if (config.cancel)
        solver.setCancel(config.cancel);
    sat::CnfBuilder cnf(solver);
    bmc::Unroller unroller(cnf, netlist, preds, assumptions);
    unroller.pushInitialFrame();

    std::vector<sva::MonitorCnf *> monitors;
    for (PropTrack &t : tracks) {
        t.monitor = std::make_unique<sva::MonitorCnf>(cnf, *t.runtime);
        t.state = t.monitor->initialState();
        monitors.push_back(t.monitor.get());
    }

    const std::size_t depth = config.bmcDepth;
    for (std::size_t d = 0; d <= depth; ++d) {
        if (config.cancel &&
            config.cancel->load(std::memory_order_relaxed))
            return false;

        std::vector<sva::MonitorCnf::State> states;
        states.reserve(tracks.size());
        for (const PropTrack &t : tracks)
            states.push_back(t.state);

        cnf.pushFrame();
        const bool ok = queryPropsAtDepth(tracks, monitors, states,
                                          solver, cnf, unroller, d);
        cnf.popFrame();
        if (!ok)
            return false;
        if (d == depth)
            break;

        // Open cycle d: inputs, cone, implications as hard clauses.
        // These must stay outside any frame — depth d+1 onward
        // depends on them.
        unroller.attachInputs(d);
        unroller.assertValidCycle(d);

        if (!result.coverReached) {
            cnf.pushFrame();
            const bool cover_ok = queryCoversAtCycle(
                covers, solver, cnf, unroller, d, result);
            cnf.popFrame();
            if (!cover_ok)
                return false;
        }

        unroller.pushTransition();
        for (PropTrack &t : tracks)
            if (!t.resolved)
                t.state = t.monitor->step(t.state, [&](int pred) {
                    return unroller.predLit(d, pred);
                });
    }
    addSolverStats(result, solver);
    return true;
}

/**
 * Rebuild-per-depth sweep: the full-price baseline the incremental
 * path is benchmarked against. Every depth d gets a fresh solver,
 * CNF, unrolling of cycles 0..d-1, and monitor re-encoding, then
 * issues exactly the queries the incremental sweep issues at that
 * depth — identical verdict classes and witness depths, O(depth²)
 * encoding work, and no learned-clause carry-over. Returns false on
 * cancellation.
 */
bool
sweepRebuild(const rtl::Netlist &netlist,
             const sva::PredicateTable &preds,
             const std::vector<Assumption> &assumptions,
             const EngineConfig &config,
             std::vector<PropTrack> &tracks,
             const std::vector<const Assumption *> &covers,
             VerifyResult &result)
{
    const std::size_t depth = config.bmcDepth;
    for (std::size_t d = 0; d <= depth; ++d) {
        if (config.cancel &&
            config.cancel->load(std::memory_order_relaxed))
            return false;

        sat::Solver solver;
        if (config.cancel)
            solver.setCancel(config.cancel);
        sat::CnfBuilder cnf(solver);
        bmc::Unroller unroller(cnf, netlist, preds, assumptions);
        unroller.pushInitialFrame();

        std::vector<std::unique_ptr<sva::MonitorCnf>> owned;
        std::vector<sva::MonitorCnf *> monitors;
        std::vector<sva::MonitorCnf::State> states;
        for (PropTrack &t : tracks) {
            owned.push_back(
                std::make_unique<sva::MonitorCnf>(cnf, *t.runtime));
            monitors.push_back(owned.back().get());
            states.push_back(owned.back()->initialState());
        }

        // Replay cycles 0..d-1 to reconstruct frame d and the
        // monitor states the incremental sweep would hold here.
        for (std::size_t j = 0; j < d; ++j) {
            unroller.attachInputs(j);
            unroller.assertValidCycle(j);
            unroller.pushTransition();
            for (std::size_t i = 0; i < tracks.size(); ++i)
                if (!tracks[i].resolved)
                    states[i] = monitors[i]->step(
                        states[i], [&](int pred) {
                            return unroller.predLit(j, pred);
                        });
        }

        if (!queryPropsAtDepth(tracks, monitors, states, solver, cnf,
                               unroller, d))
            return false;

        if (d < depth && !result.coverReached) {
            unroller.attachInputs(d);
            unroller.assertValidCycle(d);
            if (!queryCoversAtCycle(covers, solver, cnf, unroller, d,
                                    result))
                return false;
        }
        addSolverStats(result, solver);
    }
    return true;
}

/**
 * k-induction for whatever the sweep left open. Independent of the
 * sweep mode: the window solver is always built fresh (its free
 * initial frame shares nothing with the reset-pinned sweep CNF), so
 * inductionK values match between modes by construction. Returns
 * false on cancellation.
 */
bool
runInduction(const rtl::Netlist &netlist,
             const sva::PredicateTable &preds,
             const std::vector<Assumption> &assumptions,
             const EngineConfig &config,
             std::vector<PropTrack> &tracks,
             const std::vector<const Assumption *> &covers,
             VerifyResult &result)
{
    const std::size_t depth = config.bmcDepth;
    sat::Solver isolver;
    if (config.cancel)
        isolver.setCancel(config.cancel);
    sat::CnfBuilder icnf(isolver);
    bmc::Unroller iu(icnf, netlist, preds, assumptions);
    iu.pushFreeFrame();

    std::vector<IndProp> iprops;
    for (PropTrack &t : tracks) {
        if (t.resolved)
            continue;
        IndProp ip;
        ip.track = &t;
        ip.monitor = std::make_unique<sva::MonitorCnf>(icnf, *t.runtime);
        ip.states.push_back(ip.monitor->freeState());
        ip.act = icnf.freshLit();
        iprops.push_back(std::move(ip));
    }
    std::vector<IndCover> icovers;
    if (!result.coverReached) {
        for (const Assumption *c : covers) {
            IndCover ic;
            ic.cover = c;
            ic.act = icnf.freshLit();
            icovers.push_back(std::move(ic));
        }
    }

    // Per-frame design-state literals and memoized pairwise design
    // distinctness, shared across properties and covers.
    std::vector<std::vector<sat::Lit>> frame_bits;
    frame_bits.emplace_back();
    iu.appendStateLits(0, frame_bits.back());
    std::map<std::pair<std::size_t, std::size_t>, sat::Lit>
        design_distinct;
    auto designDistinct = [&](std::size_t j, std::size_t k) {
        auto it = design_distinct.find({j, k});
        if (it != design_distinct.end())
            return it->second;
        sat::Lit l =
            vectorsDistinct(icnf, frame_bits[j], frame_bits[k]);
        design_distinct.emplace(std::make_pair(j, k), l);
        return l;
    };
    auto monitorBits = [](const IndProp &ip, std::size_t f) {
        std::vector<sat::Lit> bits;
        ip.monitor->appendStateLits(ip.states[f], bits);
        return bits;
    };

    // Base cases come from the sweep: no property fails within
    // bmcDepth cycles and no cover fires in cycles 0..bmcDepth-1,
    // so any window up to bmcDepth+1 has its base discharged.
    const std::size_t max_k =
        std::min(config.inductionDepth, depth + 1);
    for (std::size_t k = 1; k <= max_k; ++k) {
        if (config.cancel &&
            config.cancel->load(std::memory_order_relaxed))
            return false;

        // Grow the window: cycle k-1 runs, frame k appears.
        iu.attachInputs(k - 1);
        iu.assertValidCycle(k - 1);
        for (IndCover &ic : icovers)
            ic.hits.push_back(iu.coverHitLit(k - 1, *ic.cover));
        iu.pushTransition();
        frame_bits.emplace_back();
        iu.appendStateLits(k, frame_bits.back());

        for (IndProp &ip : iprops) {
            if (!ip.active)
                continue;
            PropTrack &t = *ip.track;
            // act -> the window prefix never fails...
            isolver.addClause(
                ~ip.act, ~ip.monitor->failed(ip.states[k - 1]));
            ip.states.push_back(ip.monitor->step(
                ip.states[k - 1],
                [&](int pred) { return iu.predLit(k - 1, pred); }));
            // ...and its product states are pairwise distinct
            // (a minimal counterexample is loop-free: splicing
            // out a repeated product state replays the suffix
            // and yields a shorter one).
            const auto mk = monitorBits(ip, k);
            for (std::size_t j = 0; j < k; ++j)
                isolver.addClause(
                    ~ip.act,
                    icnf.mkOr(designDistinct(j, k),
                              vectorsDistinct(icnf, monitorBits(ip, j),
                                              mk)));
            const auto t_solve = Clock::now();
            const sat::Result r = isolver.solve(
                {ip.act, ip.monitor->failed(ip.states[k])});
            t.result.checkSeconds += elapsedSeconds(t_solve);
            if (r == sat::Result::Unknown)
                return false;
            if (r == sat::Result::Unsat) {
                ip.active = false;
                t.resolved = true;
                t.result.status = ProofStatus::Proven;
                t.result.inductionK = static_cast<std::uint32_t>(k);
            }
        }

        for (IndCover &ic : icovers) {
            if (ic.provenUnreachable)
                continue;
            // Window cycles 0..k-1: no hit before the last cycle,
            // distinct design states, hit at cycle k-1.
            if (k >= 2)
                isolver.addClause(~ic.act, ~ic.hits[k - 2]);
            for (std::size_t j = 0; j + 1 < k; ++j)
                isolver.addClause(~ic.act, designDistinct(j, k - 1));
            const sat::Result r =
                isolver.solve({ic.act, ic.hits[k - 1]});
            if (r == sat::Result::Unknown)
                return false;
            if (r == sat::Result::Unsat)
                ic.provenUnreachable = true;
        }
    }

    if (!icovers.empty()) {
        bool all_unreachable = true;
        for (const IndCover &ic : icovers)
            all_unreachable &= ic.provenUnreachable;
        result.coverUnreachable = all_unreachable;
    }
    addSolverStats(result, isolver);
    return true;
}

} // namespace

VerifyResult
verifyBmc(const rtl::Netlist &netlist,
          const sva::PredicateTable &preds,
          const std::vector<Assumption> &assumptions,
          const std::vector<sva::Property> &properties,
          const EngineConfig &config)
{
    const auto t_start = Clock::now();
    VerifyResult result;
    result.engineUsed = "bmc";
    result.checkJobs = 1;

    std::vector<PropTrack> tracks(properties.size());
    for (std::size_t i = 0; i < properties.size(); ++i) {
        PropTrack &t = tracks[i];
        t.runtime = properties[i].runtime
                        ? properties[i].runtime
                        : std::make_shared<const sva::PropertyRuntime>(
                              properties[i]);
        t.result.name = properties[i].name;
    }

    std::vector<const Assumption *> covers;
    for (const Assumption &a : assumptions)
        if (a.kind == Assumption::Kind::FinalValueCover)
            covers.push_back(&a);

    const std::size_t depth = config.bmcDepth;
    result.graphDepth = static_cast<std::uint32_t>(depth);

    auto cancelled = [&]() {
        result.cancelled = true;
        result.checkSeconds = elapsedSeconds(t_start);
        return result;
    };

    // ---- bounded sweep: depths 0..bmcDepth ----
    const bool swept =
        config.satIncremental
            ? sweepIncremental(netlist, preds, assumptions, config,
                               tracks, covers, result)
            : sweepRebuild(netlist, preds, assumptions, config,
                           tracks, covers, result);
    if (!swept)
        return cancelled();

    // ---- k-induction for whatever the sweep left open ----
    bool props_open = false;
    for (const PropTrack &t : tracks)
        props_open |= !t.resolved;
    const bool covers_open = !covers.empty() && !result.coverReached;

    if (config.inductionDepth > 0 && (props_open || covers_open)) {
        if (!runInduction(netlist, preds, assumptions, config, tracks,
                          covers, result))
            return cancelled();
    }

    for (PropTrack &t : tracks) {
        if (!t.resolved) {
            t.result.status = ProofStatus::Bounded;
            t.result.boundCycles = static_cast<std::uint32_t>(depth);
        }
        result.properties.push_back(std::move(t.result));
    }

    result.checkSeconds = elapsedSeconds(t_start);
    return result;
}

} // namespace rtlcheck::formal
