/**
 * @file
 * Transition-relation unroller: Tseitin encoding of an optimized
 * rtl::Netlist over per-cycle frames, for the SAT-based BMC and
 * k-induction back-end.
 *
 * Each frame holds bit-vectors for the flattened design state
 * (registers then memory words, exactly Netlist's state layout), the
 * primary inputs of the cycle leaving that frame, every node value of
 * the combinational cone, and one truth literal per registered
 * predicate. The node translation mirrors Netlist::eval() case by
 * case — the invariant "every node value fits its declared width"
 * carries over, so a SAT model decodes to states and inputs the
 * concrete simulator reproduces bit-exactly.
 *
 * Frame discipline (BmcEngine depends on it):
 *   - a frame starts with only its state bits (initial, free, or the
 *     image of the previous frame's transition);
 *   - attachInputs() creates the cycle's input variables and
 *     evaluates the cone, making predicate literals available;
 *   - assertValidCycle() adds the Assumption implications of that
 *     cycle as hard clauses (unit-implied structure, not assumptions);
 *   - pushTransition() computes the next frame's state image.
 */

#ifndef RTLCHECK_FORMAL_BMC_UNROLLER_HH
#define RTLCHECK_FORMAL_BMC_UNROLLER_HH

#include <cstdint>
#include <vector>

#include "formal/assumptions.hh"
#include "rtl/netlist.hh"
#include "sat/cnf.hh"
#include "sva/predicates.hh"

namespace rtlcheck::formal::bmc {

class Unroller
{
  public:
    /** All referenced objects must outlive the unroller. */
    Unroller(sat::CnfBuilder &cnf, const rtl::Netlist &netlist,
             const sva::PredicateTable &preds,
             const std::vector<Assumption> &assumptions);

    /** Frames created so far (pushInitial/FreeFrame + transitions). */
    std::size_t numFrames() const { return _frames.size(); }

    /** Frame 0 pinned to the reset state plus InitialPin overrides
     *  (the state StateGraph explores from). */
    void pushInitialFrame();

    /** Frame 0 fully unconstrained within declared slot widths, for
     *  induction windows. */
    void pushFreeFrame();

    /**
     * Frame 0 with *free* state variables plus returned unit
     * assumption literals that pin every slot to the same
     * reset/InitialPin image pushInitialFrame() bakes in as
     * constants. Solving under the returned literals is equivalent
     * to pushInitialFrame() (up to constant folding, which the free
     * encoding forgoes); swapping in a different image's literals
     * re-targets the same unrolled CNF — how a sweep over designs
     * differing only in memory initialization (the litmus suite's
     * programs change nothing else) shares one solver and its
     * learned clauses.
     */
    std::vector<sat::Lit> pushPinnedFrame();

    /** Frame 0 aliased to `other`'s frame 0: the same state
     *  bit-vectors, so the two machines provably start from the one
     *  (free or pinned) state. Both unrollers must share a
     *  CnfBuilder and a state layout. Used by the mutation miter. */
    void pushSharedFrame(const Unroller &other);

    /** Like attachInputs(k), but alias this frame's input variables
     *  to `other`'s frame-k inputs so both machines see the same
     *  stimulus; evaluates the cone as usual. */
    void attachSharedInputs(std::size_t k, const Unroller &other);

    /** Create frame k's input variables and evaluate the cone.
     *  Required before predLit/coverHit/assertValidCycle/transition
     *  on that frame; call once per frame. */
    void attachInputs(std::size_t k);

    bool hasInputs(std::size_t k) const { return _frames[k].evaluated; }

    /** Add every Implication (and FinalValueCover, which doubles as
     *  one — StateGraph prunes those edges too) of cycle k as hard
     *  clauses: ant -> cons. */
    void assertValidCycle(std::size_t k);

    /** Append frame numFrames()-1's state image as a new frame. */
    void pushTransition();

    /** Truth literal of predicate `pred` in cycle k (the letter the
     *  monitor consumes leaving frame k). */
    sat::Lit predLit(std::size_t k, int pred) const;

    /** ant && cons of one cover assumption in cycle k — the exact
     *  CoverHit condition StateGraph records on unpruned edges. */
    sat::Lit coverHitLit(std::size_t k, const Assumption &cover);

    /** Decode cycle k's input combo from a SAT model, in StateGraph's
     *  witness byte format (inputs concatenated LSB-first). */
    std::uint8_t decodeInput(std::size_t k,
                             const sat::Solver &solver) const;

    /** Append frame k's design-state literals (simple-path
     *  constraints). */
    void appendStateLits(std::size_t k,
                         std::vector<sat::Lit> &out) const;

    /** Frame k's bit-vector for one state slot (miter diffing). */
    const sat::Bits &stateBits(std::size_t k, std::size_t slot) const
    {
        return _frames[k].state[slot];
    }

    /** Decode one node value / state slot of frame k from a SAT
     *  model (diagnostics: frame-by-frame diff against eval()). */
    std::uint32_t modelNodeValue(std::size_t k, std::uint32_t node,
                                 const sat::Solver &solver) const;
    std::uint32_t modelStateValue(std::size_t k, std::size_t slot,
                                  const sat::Solver &solver) const;

    /** Tseitin gates allocated so far (diagnostics). */
    std::size_t numGates() const { return _cnf.numGates(); }

  private:
    struct Frame
    {
        /** One bit-vector per state slot, at the slot's declared
         *  width (registers first, then memory words). */
        std::vector<sat::Bits> state;
        /** One bit-vector per primary input. */
        std::vector<sat::Bits> inputs;
        /** One bit-vector per optimized node, at the node's width. */
        std::vector<sat::Bits> values;
        /** Truth literal per predicate id. */
        std::vector<sat::Lit> preds;
        bool evaluated = false;
    };

    void evalFrame(Frame &f);
    sat::Bits stateSlotImage(const Frame &f, std::size_t slot) const;

    sat::CnfBuilder &_cnf;
    const rtl::Netlist &_netlist;
    const sva::PredicateTable &_preds;
    const std::vector<Assumption> &_assumptions;
    /** Declared width of each state slot. */
    std::vector<unsigned> _slotWidths;
    std::vector<Frame> _frames;
};

} // namespace rtlcheck::formal::bmc

#endif // RTLCHECK_FORMAL_BMC_UNROLLER_HH
