#include "engine.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/hashing.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "formal/bmc/bmc_engine.hh"

namespace rtlcheck::formal {

std::string
backendName(Backend b)
{
    switch (b) {
      case Backend::Explicit:
        return "explicit";
      case Backend::Bmc:
        return "bmc";
      case Backend::Portfolio:
        return "portfolio";
    }
    return "?";
}

std::optional<Backend>
backendFromName(const std::string &name)
{
    if (name == "explicit")
        return Backend::Explicit;
    if (name == "bmc")
        return Backend::Bmc;
    if (name == "portfolio")
        return Backend::Portfolio;
    return std::nullopt;
}

EngineConfig
hybridConfig()
{
    // Table 1's Hybrid row: a mix of bounded engines and full-proof
    // engines. The analogues of its engine budgets are a bounded
    // state-exploration allowance and a small per-property product
    // allowance, so larger tests receive bounded proofs.
    return EngineConfig{"Hybrid", 100, 64};
}

EngineConfig
fullProofConfig()
{
    // Table 1's Full_Proof row: exclusively full-proof engines with
    // a larger memory budget. Exploration is unlimited; only the
    // very largest properties fall back to bounded proofs.
    return EngineConfig{"Full_Proof", 0, 150};
}

EngineConfig
unboundedConfig()
{
    // No budgets at all: every verdict is a full proof or a real
    // counterexample, never a bounded fallback. This is the only
    // configuration whose verdicts are functions of the predicate
    // cone alone (bounded fallbacks depend on whole-design product
    // sizes), so it is the configuration the verification service's
    // cone-key incremental reuse requires (service/verdict_serial.hh).
    return EngineConfig{"Unbounded", 0, 0};
}

std::string
proofStatusName(ProofStatus s)
{
    switch (s) {
      case ProofStatus::Proven:
        return "proven";
      case ProofStatus::Bounded:
        return "bounded";
      case ProofStatus::Falsified:
        return "falsified";
    }
    return "?";
}

int
VerifyResult::numProven() const
{
    int n = 0;
    for (const auto &p : properties)
        n += p.status == ProofStatus::Proven;
    return n;
}

int
VerifyResult::numBounded() const
{
    int n = 0;
    for (const auto &p : properties)
        n += p.status == ProofStatus::Bounded;
    return n;
}

int
VerifyResult::numFalsified() const
{
    int n = 0;
    for (const auto &p : properties)
        n += p.status == ProofStatus::Falsified;
    return n;
}

bool
VerifyResult::clean() const
{
    return !coverReached && numFalsified() == 0;
}

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Thrown out of exploration observers to abandon a raced explicit
 *  run; verifyExplicit() catches it and returns a cancelled result. */
struct CancelledError
{
};

bool
cancelRequested(const EngineConfig &config)
{
    return config.cancel &&
           config.cancel->load(std::memory_order_relaxed);
}

/** Level-granular cancellation for explorations that run without an
 *  EarlyMonitor (no properties, or earlyFalsify off). */
class CancelObserver final : public ExploreObserver
{
  public:
    explicit CancelObserver(const std::atomic<bool> *cancel)
        : _cancel(cancel)
    {
    }

    void
    onLevelCommitted(const StateGraph &, std::size_t,
                     std::uint32_t) override
    {
        if (_cancel->load(std::memory_order_relaxed))
            throw CancelledError{};
    }

  private:
    const std::atomic<bool> *_cancel;
};

/**
 * NFA-product check of one property over a state graph, resumable.
 *
 * The product frontier is FIFO by product-state id, and a product
 * state's status (Failed / Matched / cap truncation) depends only on
 * the state itself — not on edges. So the walk can *stall* at the
 * first queued state whose graph node has no committed out-edges yet
 * and resume once more of the graph exists: the pop/expand sequence
 * is exactly the batch one, just spread over time, and every id,
 * parent, witness trace, and truncation decision is bit-identical to
 * a single finish() over the completed graph. That is what lets the
 * engine step these checkers *during* exploration (early
 * falsification) and reuse them as the final check results.
 *
 * `G` is StateGraph (exploration-time monitors) or GraphView (batch
 * checks over cached graphs). All working state is local, so any
 * number of checkers may run concurrently on one graph.
 */
template <class G>
class ProductChecker
{
  public:
    ProductChecker(const G &graph, const sva::Property &prop,
                   std::size_t max_states)
        : _graph(graph), _max(max_states)
    {
        _result.name = prop.name;

        // The compiled runtime is immutable and graph-independent;
        // generation attaches one per property so every engine
        // config shares it. Hand-assembled properties compile here.
        if (!prop.runtime)
            _local =
                std::make_shared<const sva::PropertyRuntime>(prop);
        _rt = prop.runtime ? prop.runtime.get() : _local.get();
        _nseq = static_cast<std::size_t>(_rt->numSequences());

        // Product states live in flat parallel arrays: the
        // fixed-size fields in `_states`, the per-sequence live sets
        // in `_livePool` (id-major, `_nseq` words per state).
        const std::size_t expected =
            _max ? _max + 64 : _graph.numNodes() * std::size_t(4);
        _states.reserve(expected);
        _livePool.reserve(expected * _nseq);
        _cap = 64;
        while (_cap < expected * 2)
            _cap <<= 1;
        _slots.assign(_cap, {0, kSlotEmpty});

        // NFA transitions are precompiled against the graph's
        // interned edge alphabet; syncAlphabet() appends rows as
        // exploration interns new masks (per-letter rows are
        // independent, see PropertyRuntime::extendAlphabet).
        _tables.resize(static_cast<std::size_t>(_nseq));
        syncAlphabet();

        _cur = _rt->initial();
        _scratch = _rt->initial();
        bool root_new = intern(0, _rt->initial(), 0, 0, 0);
        RC_ASSERT(root_new);
        _states[0].parent = 0;
    }

    /**
     * Pop and process product states in id order. Stops early (without
     * marking the check done) at the first state whose graph node is
     * not among the `expanded_nodes` committed ones — unless `final`,
     * in which case such states simply have no out-edges, exactly as
     * in a batch run over the finished graph.
     */
    void
    advance(std::size_t expanded_nodes, bool final)
    {
        if (_done)
            return;
        auto t0 = Clock::now();
        syncAlphabet();
        while (_next < _states.size()) {
            const std::uint32_t id = _next;
            const std::uint64_t *live =
                _livePool.data() + std::size_t(id) * _nseq;
            _cur.live.assign(live, live + _nseq);
            _cur.matched = _states[id].matched;

            sva::Tri status = _rt->status(_cur);
            if (status == sva::Tri::Failed) {
                _result.status = ProofStatus::Falsified;
                _result.counterexample = tracePath(id);
                _result.productStates = _states.size();
                _done = true;
                break;
            }
            if (status == sva::Tri::Matched) {
                ++_next; // satisfied on every extension of this path
                continue;
            }

            if (_max && _states.size() >= _max) {
                _truncated = true;
                // The proof is only valid up to the shallowest state
                // left unexpanded; take the minimum over the whole
                // frontier (every discovered-but-unexpanded id)
                // rather than trusting queue order.
                _truncatedDepth = _states[id].depth;
                for (std::uint32_t f = id + 1;
                     f < static_cast<std::uint32_t>(_states.size());
                     ++f)
                    _truncatedDepth = std::min(_truncatedDepth,
                                               _states[f].depth);
                _done = true;
                break;
            }

            const std::uint32_t node = _states[id].node;
            if (!final && node >= expanded_nodes)
                break; // stall until this node's edges are committed

            const std::uint32_t depth = _states[id].depth;
            for (const GraphEdge &e : _graph.outEdges(node)) {
                _scratch = _cur;
                _rt->stepLetter(_scratch, e.maskId, _tables);
                intern(e.dst, _scratch, id, e.input, depth + 1);
            }
            ++_next;
        }
        _seconds += secondsSince(t0);
    }

    /** Terminal (Falsified or product-cap) — no advance() can change
     *  the outcome anymore. */
    bool done() const { return _done; }

    bool
    falsified() const
    {
        return _done && _result.status == ProofStatus::Falsified;
    }

    /** Drain the remaining queue against the finished graph and
     *  assemble the result. */
    PropertyResult
    finish()
    {
        advance(0, true);
        if (_result.status != ProofStatus::Falsified) {
            _result.productStates = _states.size();
            if (!_truncated && _graph.complete()) {
                _result.status = ProofStatus::Proven;
            } else {
                _result.status = ProofStatus::Bounded;
                std::uint32_t bound = _graph.exploredDepth();
                if (_truncated)
                    bound = std::min(bound, _truncatedDepth);
                _result.boundCycles = bound;
            }
        }
        _result.checkSeconds = _seconds;
        return _result;
    }

  private:
    static constexpr std::uint32_t kSlotEmpty = 0xffffffffu;

    struct ProductState
    {
        std::uint32_t node;
        std::uint32_t parent;
        std::uint32_t depth;
        std::uint64_t matched;
        std::uint8_t input;
    };

    void
    syncAlphabet()
    {
        const std::vector<sva::PredMask> &letters =
            _graph.maskTable();
        if (letters.size() > _compiledLetters) {
            _rt->extendAlphabet(letters, _compiledLetters, _tables);
            _compiledLetters = letters.size();
        }
    }

    static std::uint64_t
    keyOf(std::uint32_t node, const sva::PropertyRuntime::State &ps)
    {
        std::uint64_t h = hashCombine(0x70726f6475637421ull, node);
        for (std::uint64_t l : ps.live)
            h = hashCombine(h, l);
        return hashCombine(h, ps.matched);
    }

    void
    grow()
    {
        std::vector<std::pair<std::uint64_t, std::uint32_t>> old(
            _cap * 2, {0, kSlotEmpty});
        old.swap(_slots);
        _cap *= 2;
        for (const auto &s : old) {
            if (s.second == kSlotEmpty)
                continue;
            std::size_t idx = s.first & (_cap - 1);
            while (_slots[idx].second != kSlotEmpty)
                idx = (idx + 1) & (_cap - 1);
            _slots[idx] = s;
        }
    }

    // Dedup is a small open-addressed table of (hash, id) slots with
    // linear probing: the products here are a few hundred states, so
    // node-based maps spend more time allocating and pointer-chasing
    // than hashing. Equal full hashes still compare the actual
    // state. Takes the candidate by reference and copies it only
    // when genuinely new; returns true for new states.
    bool
    intern(std::uint32_t node,
           const sva::PropertyRuntime::State &ps,
           std::uint32_t parent, std::uint8_t input,
           std::uint32_t depth)
    {
        std::uint64_t h = keyOf(node, ps);
        std::size_t idx = h & (_cap - 1);
        for (;;) {
            auto &slot = _slots[idx];
            if (slot.second == kSlotEmpty) {
                std::uint32_t id =
                    static_cast<std::uint32_t>(_states.size());
                slot = {h, id};
                ++_used;
                _states.push_back(ProductState{
                    node, parent, depth, ps.matched, input});
                _livePool.insert(_livePool.end(), ps.live.begin(),
                                 ps.live.end());
                if (_used * 4 >= _cap * 3)
                    grow();
                return true;
            }
            if (slot.first == h) {
                const ProductState &other = _states[slot.second];
                if (other.node == node &&
                    other.matched == ps.matched &&
                    std::memcmp(
                        _livePool.data() +
                            std::size_t(slot.second) * _nseq,
                        ps.live.data(),
                        _nseq * sizeof(std::uint64_t)) == 0)
                    return false;
            }
            idx = (idx + 1) & (_cap - 1);
        }
    }

    WitnessTrace
    tracePath(std::uint32_t id) const
    {
        WitnessTrace trace;
        while (_states[id].parent != id) {
            trace.inputs.push_back(_states[id].input);
            id = _states[id].parent;
        }
        std::reverse(trace.inputs.begin(), trace.inputs.end());
        return trace;
    }

    const G &_graph;
    std::size_t _max = 0;
    const sva::PropertyRuntime *_rt = nullptr;
    std::shared_ptr<const sva::PropertyRuntime> _local;
    std::size_t _nseq = 0;
    sva::PropertyRuntime::StepTables _tables;
    std::size_t _compiledLetters = 0;

    std::vector<ProductState> _states;
    std::vector<std::uint64_t> _livePool;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> _slots;
    std::size_t _cap = 0;
    std::size_t _used = 0;

    sva::PropertyRuntime::State _cur;
    sva::PropertyRuntime::State _scratch;
    std::uint32_t _next = 0;
    bool _done = false;
    bool _truncated = false;
    std::uint32_t _truncatedDepth = 0;
    double _seconds = 0.0;
    PropertyResult _result;
};

/** One-shot batch check (cached graphs, parallel fan-out). */
PropertyResult
checkProperty(const GraphView &graph, const sva::Property &prop,
              std::size_t max_states)
{
    ProductChecker<GraphView> checker(graph, prop, max_states);
    return checker.finish();
}

/**
 * Exploration observer that steps one ProductChecker per property
 * after every committed BFS level, recording the wall-clock moment a
 * counterexample is first detected. When engaged (fresh exploration),
 * finishing the checkers *is* the check phase: the product work
 * happens exactly once, spread across exploration.
 */
class EarlyMonitor final : public ExploreObserver
{
  public:
    EarlyMonitor(const std::vector<sva::Property> &props,
                 std::size_t max_states, Clock::time_point start,
                 const std::atomic<bool> *cancel)
        : _props(props), _max(max_states), _start(start),
          _cancel(cancel)
    {
    }

    void
    onLevelCommitted(const StateGraph &graph, std::size_t expanded,
                     std::uint32_t) override
    {
        if (_cancel && _cancel->load(std::memory_order_relaxed))
            throw CancelledError{};
        if (!_engaged) {
            _engaged = true;
            _early.assign(_props.size(), 0.0);
            _checkers.reserve(_props.size());
            for (const sva::Property &p : _props)
                _checkers.push_back(
                    std::make_unique<ProductChecker<StateGraph>>(
                        graph, p, _max));
        }
        for (std::size_t i = 0; i < _checkers.size(); ++i) {
            ProductChecker<StateGraph> &c = *_checkers[i];
            if (c.done())
                continue;
            c.advance(expanded, false);
            if (c.falsified())
                _early[i] = secondsSince(_start);
        }
    }

    /** Did a fresh exploration actually run the monitors? (False on
     *  cache hits — the batch path takes over.) */
    bool engaged() const { return _engaged; }

    PropertyResult
    finish(std::size_t i)
    {
        PropertyResult r = _checkers[i]->finish();
        if (_early[i] > 0.0) {
            r.earlyFalsified = true;
            r.earlyFalsifySeconds = _early[i];
        }
        return r;
    }

  private:
    const std::vector<sva::Property> &_props;
    std::size_t _max = 0;
    Clock::time_point _start;
    const std::atomic<bool> *_cancel = nullptr;
    bool _engaged = false;
    std::vector<std::unique_ptr<ProductChecker<StateGraph>>>
        _checkers;
    std::vector<double> _early;
};

VerifyResult
verifyExplicit(const rtl::Netlist &netlist,
               const sva::PredicateTable &preds,
               const std::vector<Assumption> &assumptions,
               const std::vector<sva::Property> &properties,
               const EngineConfig &config, GraphCache *cache)
{
    VerifyResult result;
    result.engineUsed = "explicit";

    auto t0 = Clock::now();
    ExploreLimits limits;
    limits.maxNodes = config.exploreMaxNodes;
    limits.jobs = config.exploreJobs;
    // On-the-fly falsification: if this call ends up running a fresh
    // exploration, the monitor steps every property's product after
    // each committed BFS level, so counterexamples surface as soon as
    // the violating path exists. Cache hits skip exploration, so the
    // monitor stays disengaged and the batch check below runs.
    EarlyMonitor monitor(properties, config.productMaxStates, t0,
                         config.cancel);
    CancelObserver cancel_observer(config.cancel);
    ExploreObserver *observer =
        config.earlyFalsify && !properties.empty() ? &monitor
                                                   : nullptr;
    if (!observer && config.cancel)
        observer = &cancel_observer;
    std::shared_ptr<const StateGraph> owner;
    bool was_hit = false;
    try {
        if (cache) {
            owner = cache->obtain(netlist, preds, assumptions,
                                  limits, &was_hit, observer);
        } else {
            owner = std::make_shared<const StateGraph>(
                netlist, assumptions, preds, limits, observer);
        }
    } catch (const CancelledError &) {
        result.cancelled = true;
        result.exploreSeconds = secondsSince(t0);
        return result;
    }
    // The cached graph may be larger than this config's budget; the
    // view recovers exactly the bounded run's shape, so everything
    // below is identical to having explored with `limits`.
    GraphView graph(owner.get(), limits.maxNodes);
    result.exploreSeconds = secondsSince(t0);
    result.graphFromCache = was_hit;
    result.arenaBytes = owner->arenaBytes();
    result.arenaBytesUnpacked = owner->unpackedArenaBytes();

    result.graphNodes = graph.numNodes();
    result.graphEdges = graph.numEdges();
    result.graphComplete = graph.complete();
    result.graphDepth = graph.exploredDepth();

    bool any_cover = false;
    bool have_cover_assumption = false;
    for (const Assumption &a : assumptions)
        have_cover_assumption |=
            a.kind == Assumption::Kind::FinalValueCover;
    for (const CoverHit &hit : graph.coverHits()) {
        if (hit.reached) {
            any_cover = true;
            WitnessTrace w;
            w.inputs = graph.pathTo(hit.node);
            w.inputs.push_back(hit.input);
            result.coverWitness = w;
#ifndef NDEBUG
            // Witness integrity: replaying the recorded path must
            // land exactly on the stored packed state (guards the
            // packing + parallel renumbering machinery).
            RC_ASSERT(owner->replayMatches(netlist, hit.node),
                      "cover witness replay diverged from the "
                      "stored packed state");
#endif
        }
    }
    result.coverReached = any_cover;
    result.coverUnreachable =
        have_cover_assumption && !any_cover && graph.complete();

    // Property checks are independent NFA products over the (now
    // immutable) graph: fan them out across a pool, each check
    // writing its own input-order slot, so the result is identical
    // to the serial engine at any lane count.
    auto t1 = Clock::now();
    std::size_t jobs =
        config.jobs ? config.jobs : ThreadPool::defaultJobs();
    result.properties.resize(properties.size());
    if (monitor.engaged()) {
        // The monitors already consumed the graph while it was being
        // explored; finishing them (draining whatever the product
        // queues still hold) IS the check phase — the product work
        // happens exactly once, and the results are bit-identical to
        // the batch path below.
        for (std::size_t i = 0; i < properties.size(); ++i) {
            if (cancelRequested(config)) {
                result.cancelled = true;
                break;
            }
            result.properties[i] = monitor.finish(i);
        }
        result.checkJobs = 1;
    } else if (jobs > 1 && properties.size() > 1 &&
               !cancelRequested(config)) {
        ThreadPool pool(jobs);
        pool.parallelFor(properties.size(), [&](std::size_t i) {
            result.properties[i] = checkProperty(
                graph, properties[i], config.productMaxStates);
        });
        result.checkJobs = jobs;
    } else {
        for (std::size_t i = 0; i < properties.size(); ++i) {
            if (cancelRequested(config)) {
                result.cancelled = true;
                break;
            }
            result.properties[i] = checkProperty(
                graph, properties[i], config.productMaxStates);
        }
    }
    result.checkSeconds = secondsSince(t1);
    return result;
}

/** Is a BMC result a full verdict (nothing left open)? Portfolio may
 *  only cancel the explicit arm on such a result: a Bounded property
 *  or an unresolved cover must fall through to the explicit engine's
 *  answer. */
bool
bmcConclusive(const VerifyResult &r,
              const std::vector<Assumption> &assumptions)
{
    if (r.cancelled || r.numBounded() > 0)
        return false;
    bool have_cover = false;
    for (const Assumption &a : assumptions)
        have_cover |= a.kind == Assumption::Kind::FinalValueCover;
    if (have_cover && !r.coverReached && !r.coverUnreachable)
        return false;
    return true;
}

VerifyResult
verifyPortfolio(const rtl::Netlist &netlist,
                const sva::PredicateTable &preds,
                const std::vector<Assumption> &assumptions,
                const std::vector<sva::Property> &properties,
                const EngineConfig &config, GraphCache *cache)
{
    std::atomic<bool> cancel_explicit{false};
    std::atomic<bool> cancel_bmc{false};

    // An outer cancellation request has to reach both arms, whose
    // configs carry arm-private flags; a watcher relays it. Portfolio
    // runs are only nested under a cancel in portfolio-of-portfolio
    // setups, so the watcher is usually not started.
    std::atomic<bool> done{false};
    std::thread watcher;
    if (config.cancel) {
        watcher = std::thread([&] {
            while (!done.load(std::memory_order_relaxed)) {
                if (config.cancel->load(std::memory_order_relaxed)) {
                    cancel_explicit.store(true);
                    cancel_bmc.store(true);
                    break;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
        });
    }

    EngineConfig bmc_config = config;
    bmc_config.backend = Backend::Bmc;
    bmc_config.cancel = &cancel_bmc;
    auto bmc_future =
        std::async(std::launch::async, [&, bmc_config] {
            VerifyResult r = verifyBmc(netlist, preds, assumptions,
                                       properties, bmc_config);
            // First conclusive verdict wins: a finished, fully
            // resolved BMC run pulls the plug on the explicit arm.
            if (bmcConclusive(r, assumptions))
                cancel_explicit.store(true);
            return r;
        });

    EngineConfig exp_config = config;
    exp_config.backend = Backend::Explicit;
    exp_config.cancel = &cancel_explicit;
    VerifyResult exp_result =
        verifyExplicit(netlist, preds, assumptions, properties,
                       exp_config, cache);
    if (!exp_result.cancelled)
        cancel_bmc.store(true);

    VerifyResult bmc_result = bmc_future.get();
    done.store(true);
    if (watcher.joinable())
        watcher.join();

    if (cancelRequested(config)) {
        VerifyResult r;
        r.engineUsed = "portfolio";
        r.cancelled = true;
        return r;
    }

    // The explicit engine's verdict is authoritative whenever it ran
    // to completion; the BMC arm only wins by finishing a conclusive
    // result early enough to cancel it.
    if (!exp_result.cancelled) {
        exp_result.engineUsed = "portfolio:explicit";
        return exp_result;
    }
    RC_ASSERT(bmcConclusive(bmc_result, assumptions),
              "explicit arm cancelled without a conclusive BMC "
              "result");
    bmc_result.engineUsed = "portfolio:bmc";
    return bmc_result;
}

} // namespace

VerifyResult
verify(const rtl::Netlist &netlist, const sva::PredicateTable &preds,
       const std::vector<Assumption> &assumptions,
       const std::vector<sva::Property> &properties,
       const EngineConfig &config, GraphCache *cache)
{
    switch (config.backend) {
      case Backend::Explicit:
        return verifyExplicit(netlist, preds, assumptions,
                              properties, config, cache);
      case Backend::Bmc:
        return verifyBmc(netlist, preds, assumptions, properties,
                         config);
      case Backend::Portfolio:
        return verifyPortfolio(netlist, preds, assumptions,
                               properties, config, cache);
    }
    RC_PANIC("unknown engine backend");
}

} // namespace rtlcheck::formal
