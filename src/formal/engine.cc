#include "engine.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <vector>

#include "common/hashing.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace rtlcheck::formal {

EngineConfig
hybridConfig()
{
    // Table 1's Hybrid row: a mix of bounded engines and full-proof
    // engines. The analogues of its engine budgets are a bounded
    // state-exploration allowance and a small per-property product
    // allowance, so larger tests receive bounded proofs.
    return EngineConfig{"Hybrid", 100, 64};
}

EngineConfig
fullProofConfig()
{
    // Table 1's Full_Proof row: exclusively full-proof engines with
    // a larger memory budget. Exploration is unlimited; only the
    // very largest properties fall back to bounded proofs.
    return EngineConfig{"Full_Proof", 0, 150};
}

std::string
proofStatusName(ProofStatus s)
{
    switch (s) {
      case ProofStatus::Proven:
        return "proven";
      case ProofStatus::Bounded:
        return "bounded";
      case ProofStatus::Falsified:
        return "falsified";
    }
    return "?";
}

int
VerifyResult::numProven() const
{
    int n = 0;
    for (const auto &p : properties)
        n += p.status == ProofStatus::Proven;
    return n;
}

int
VerifyResult::numBounded() const
{
    int n = 0;
    for (const auto &p : properties)
        n += p.status == ProofStatus::Bounded;
    return n;
}

int
VerifyResult::numFalsified() const
{
    int n = 0;
    for (const auto &p : properties)
        n += p.status == ProofStatus::Falsified;
    return n;
}

bool
VerifyResult::clean() const
{
    return !coverReached && numFalsified() == 0;
}

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** NFA-product check of one property over the cached state graph.
 *  Pure function of (graph, prop, max_states): the graph is
 *  read-only and all working state is local, so any number of
 *  checkProperty calls may run concurrently on one graph. */
PropertyResult
checkProperty(const GraphView &graph, const sva::Property &prop,
              std::size_t max_states)
{
    auto t0 = Clock::now();
    PropertyResult result;
    result.name = prop.name;

    // The compiled runtime is immutable and graph-independent;
    // generation attaches one per property so every engine config
    // shares it. Hand-assembled properties compile here instead.
    std::shared_ptr<const sva::PropertyRuntime> local;
    if (!prop.runtime)
        local = std::make_shared<const sva::PropertyRuntime>(prop);
    const sva::PropertyRuntime &rt = prop.runtime ? *prop.runtime
                                                  : *local;
    // Precompile the NFA transitions against this graph's interned
    // edge alphabet: the product walk below consumes the same few
    // letters across every edge, so per-edge predicate testing is
    // pure waste.
    const sva::PropertyRuntime::StepTables tables =
        rt.compileAlphabet(graph.maskTable());

    // Product states live in flat parallel arrays: the fixed-size
    // fields in `states`, the per-sequence live sets in `livePool`
    // (id-major, `nseq` words per state). Keeping a state costs one
    // arena append instead of a heap-allocated vector copy.
    const std::size_t nseq =
        static_cast<std::size_t>(rt.numSequences());

    struct ProductState
    {
        std::uint32_t node;
        std::uint32_t parent;
        std::uint32_t depth;
        std::uint64_t matched;
        std::uint8_t input;
    };

    std::vector<ProductState> states;
    std::vector<std::uint64_t> livePool;
    const std::size_t expected =
        max_states ? max_states + 64
                   : graph.numNodes() * std::size_t(4);
    states.reserve(expected);
    livePool.reserve(expected * nseq);

    // Dedup is a small open-addressed table of (hash, id) slots with
    // linear probing: the products here are a few hundred states, so
    // node-based maps spend more time allocating and pointer-chasing
    // than hashing. Equal full hashes still compare the actual state.
    constexpr std::uint32_t slot_empty = 0xffffffffu;
    std::size_t cap = 64;
    while (cap < expected * 2)
        cap <<= 1;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> slots(
        cap, {0, slot_empty});
    std::size_t used = 0;

    auto keyOf = [](std::uint32_t node,
                    const sva::PropertyRuntime::State &ps) {
        std::uint64_t h = hashCombine(0x70726f6475637421ull, node);
        for (std::uint64_t l : ps.live)
            h = hashCombine(h, l);
        return hashCombine(h, ps.matched);
    };

    auto grow = [&]() {
        std::vector<std::pair<std::uint64_t, std::uint32_t>> old(
            cap * 2, {0, slot_empty});
        old.swap(slots);
        cap *= 2;
        for (const auto &s : old) {
            if (s.second == slot_empty)
                continue;
            std::size_t idx = s.first & (cap - 1);
            while (slots[idx].second != slot_empty)
                idx = (idx + 1) & (cap - 1);
            slots[idx] = s;
        }
    };

    // Takes the candidate state by reference and copies it only when
    // it is genuinely new: the caller's scratch state is untouched on
    // the (dominant) duplicate path. Returns true for new states.
    auto intern = [&](std::uint32_t node,
                      const sva::PropertyRuntime::State &ps,
                      std::uint32_t parent, std::uint8_t input,
                      std::uint32_t depth) -> bool {
        std::uint64_t h = keyOf(node, ps);
        std::size_t idx = h & (cap - 1);
        for (;;) {
            auto &slot = slots[idx];
            if (slot.second == slot_empty) {
                std::uint32_t id =
                    static_cast<std::uint32_t>(states.size());
                slot = {h, id};
                ++used;
                states.push_back(
                    ProductState{node, parent, depth, ps.matched,
                                 input});
                livePool.insert(livePool.end(), ps.live.begin(),
                                ps.live.end());
                if (used * 4 >= cap * 3)
                    grow();
                return true;
            }
            if (slot.first == h) {
                const ProductState &other = states[slot.second];
                if (other.node == node &&
                    other.matched == ps.matched &&
                    std::memcmp(livePool.data() +
                                    std::size_t(slot.second) * nseq,
                                ps.live.data(),
                                nseq * sizeof(std::uint64_t)) == 0)
                    return false;
            }
            idx = (idx + 1) & (cap - 1);
        }
    };

    auto tracePath = [&](std::uint32_t id) {
        WitnessTrace trace;
        while (states[id].parent != id) {
            trace.inputs.push_back(states[id].input);
            id = states[id].parent;
        }
        std::reverse(trace.inputs.begin(), trace.inputs.end());
        return trace;
    };

    bool root_new = intern(0, rt.initial(), 0, 0, 0);
    RC_ASSERT(root_new);
    states[0].parent = 0;

    bool truncated = false;
    std::uint32_t truncated_depth = 0;

    // Scratch states, reused across every pop/edge: the copy
    // assignments below reuse their live-set buffers instead of
    // allocating fresh vectors.
    sva::PropertyRuntime::State cur = rt.initial();
    sva::PropertyRuntime::State scratch = rt.initial();

    // New states are appended in discovery order, so the FIFO
    // frontier is just the id counter.
    for (std::uint32_t id = 0; id < states.size(); ++id) {
        const std::uint64_t *live =
            livePool.data() + std::size_t(id) * nseq;
        cur.live.assign(live, live + nseq);
        cur.matched = states[id].matched;

        sva::Tri status = rt.status(cur);
        if (status == sva::Tri::Failed) {
            result.status = ProofStatus::Falsified;
            result.counterexample = tracePath(id);
            result.productStates = states.size();
            result.checkSeconds = secondsSince(t0);
            return result;
        }
        if (status == sva::Tri::Matched)
            continue; // satisfied on every extension of this path

        if (max_states && states.size() >= max_states) {
            truncated = true;
            // The proof is only valid up to the shallowest state
            // left unexpanded; take the minimum over the whole
            // frontier (every discovered-but-unexpanded id) rather
            // than trusting queue order.
            truncated_depth = states[id].depth;
            for (std::uint32_t f = id + 1;
                 f < static_cast<std::uint32_t>(states.size()); ++f)
                truncated_depth =
                    std::min(truncated_depth, states[f].depth);
            break;
        }

        const std::uint32_t node = states[id].node;
        const std::uint32_t depth = states[id].depth;
        for (const GraphEdge &e : graph.outEdges(node)) {
            scratch = cur;
            rt.stepLetter(scratch, e.maskId, tables);
            intern(e.dst, scratch, id, e.input, depth + 1);
        }
    }

    result.productStates = states.size();
    if (!truncated && graph.complete()) {
        result.status = ProofStatus::Proven;
    } else {
        result.status = ProofStatus::Bounded;
        std::uint32_t bound = graph.exploredDepth();
        if (truncated)
            bound = std::min(bound, truncated_depth);
        result.boundCycles = bound;
    }
    result.checkSeconds = secondsSince(t0);
    return result;
}

} // namespace

VerifyResult
verify(const rtl::Netlist &netlist, const sva::PredicateTable &preds,
       const std::vector<Assumption> &assumptions,
       const std::vector<sva::Property> &properties,
       const EngineConfig &config, GraphCache *cache)
{
    VerifyResult result;

    auto t0 = Clock::now();
    ExploreLimits limits;
    limits.maxNodes = config.exploreMaxNodes;
    std::shared_ptr<const StateGraph> owner;
    bool was_hit = false;
    if (cache) {
        owner = cache->obtain(netlist, preds, assumptions, limits,
                              &was_hit);
    } else {
        owner = std::make_shared<const StateGraph>(
            netlist, assumptions, preds, limits);
    }
    // The cached graph may be larger than this config's budget; the
    // view recovers exactly the bounded run's shape, so everything
    // below is identical to having explored with `limits`.
    GraphView graph(owner.get(), limits.maxNodes);
    result.exploreSeconds = secondsSince(t0);
    result.graphFromCache = was_hit;

    result.graphNodes = graph.numNodes();
    result.graphEdges = graph.numEdges();
    result.graphComplete = graph.complete();
    result.graphDepth = graph.exploredDepth();

    bool any_cover = false;
    bool have_cover_assumption = false;
    for (const Assumption &a : assumptions)
        have_cover_assumption |=
            a.kind == Assumption::Kind::FinalValueCover;
    for (const CoverHit &hit : graph.coverHits()) {
        if (hit.reached) {
            any_cover = true;
            WitnessTrace w;
            w.inputs = graph.pathTo(hit.node);
            w.inputs.push_back(hit.input);
            result.coverWitness = w;
        }
    }
    result.coverReached = any_cover;
    result.coverUnreachable =
        have_cover_assumption && !any_cover && graph.complete();

    // Property checks are independent NFA products over the (now
    // immutable) graph: fan them out across a pool, each check
    // writing its own input-order slot, so the result is identical
    // to the serial engine at any lane count.
    auto t1 = Clock::now();
    std::size_t jobs =
        config.jobs ? config.jobs : ThreadPool::defaultJobs();
    result.properties.resize(properties.size());
    if (jobs > 1 && properties.size() > 1) {
        ThreadPool pool(jobs);
        pool.parallelFor(properties.size(), [&](std::size_t i) {
            result.properties[i] = checkProperty(
                graph, properties[i], config.productMaxStates);
        });
        result.checkJobs = jobs;
    } else {
        for (std::size_t i = 0; i < properties.size(); ++i)
            result.properties[i] = checkProperty(
                graph, properties[i], config.productMaxStates);
    }
    result.checkSeconds = secondsSince(t1);
    return result;
}

} // namespace rtlcheck::formal
