#include "engine.hh"

#include <algorithm>
#include <chrono>
#include <deque>
#include <unordered_map>

#include "common/hashing.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace rtlcheck::formal {

EngineConfig
hybridConfig()
{
    // Table 1's Hybrid row: a mix of bounded engines and full-proof
    // engines. The analogues of its engine budgets are a bounded
    // state-exploration allowance and a small per-property product
    // allowance, so larger tests receive bounded proofs.
    return EngineConfig{"Hybrid", 100, 64};
}

EngineConfig
fullProofConfig()
{
    // Table 1's Full_Proof row: exclusively full-proof engines with
    // a larger memory budget. Exploration is unlimited; only the
    // very largest properties fall back to bounded proofs.
    return EngineConfig{"Full_Proof", 0, 150};
}

std::string
proofStatusName(ProofStatus s)
{
    switch (s) {
      case ProofStatus::Proven:
        return "proven";
      case ProofStatus::Bounded:
        return "bounded";
      case ProofStatus::Falsified:
        return "falsified";
    }
    return "?";
}

int
VerifyResult::numProven() const
{
    int n = 0;
    for (const auto &p : properties)
        n += p.status == ProofStatus::Proven;
    return n;
}

int
VerifyResult::numBounded() const
{
    int n = 0;
    for (const auto &p : properties)
        n += p.status == ProofStatus::Bounded;
    return n;
}

int
VerifyResult::numFalsified() const
{
    int n = 0;
    for (const auto &p : properties)
        n += p.status == ProofStatus::Falsified;
    return n;
}

bool
VerifyResult::clean() const
{
    return !coverReached && numFalsified() == 0;
}

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** NFA-product check of one property over the cached state graph.
 *  Pure function of (graph, prop, max_states): the graph is
 *  read-only and all working state is local, so any number of
 *  checkProperty calls may run concurrently on one graph. */
PropertyResult
checkProperty(const StateGraph &graph, const sva::Property &prop,
              std::size_t max_states)
{
    auto t0 = Clock::now();
    PropertyResult result;
    result.name = prop.name;

    sva::PropertyRuntime rt(prop);

    struct ProductState
    {
        std::uint32_t node;
        sva::PropertyRuntime::State prop;
        std::uint32_t parent;
        std::uint8_t input;
        std::uint32_t depth;
    };

    std::vector<ProductState> states;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> dedup;
    // The product is usually a small multiple of the graph; one
    // rehash-free reservation beats growing through ~10 rehashes.
    dedup.reserve(max_states ? max_states
                             : graph.numNodes() * std::size_t(4));
    std::vector<std::uint32_t> key;

    auto keyOf = [&](std::uint32_t node,
                     const sva::PropertyRuntime::State &ps) {
        key.clear();
        key.push_back(node);
        rt.appendKey(ps, key);
        return hashWords(key);
    };

    // Takes the candidate state by reference and copies it only when
    // it is genuinely new: the caller's scratch state is untouched on
    // the (dominant) duplicate path, so the hot loop allocates only
    // for states it keeps.
    auto intern = [&](std::uint32_t node,
                      const sva::PropertyRuntime::State &ps,
                      std::uint32_t parent, std::uint8_t input,
                      std::uint32_t depth) -> std::int64_t {
        std::uint64_t h = keyOf(node, ps);
        auto &bucket = dedup[h];
        for (std::uint32_t id : bucket) {
            const ProductState &other = states[id];
            if (other.node == node &&
                other.prop.matched == ps.matched &&
                other.prop.live == ps.live) {
                return -1;
            }
        }
        std::uint32_t id = static_cast<std::uint32_t>(states.size());
        states.push_back(ProductState{node, ps, parent, input, depth});
        bucket.push_back(id);
        return id;
    };

    auto tracePath = [&](std::uint32_t id) {
        WitnessTrace trace;
        while (states[id].parent != id) {
            trace.inputs.push_back(states[id].input);
            id = states[id].parent;
        }
        std::reverse(trace.inputs.begin(), trace.inputs.end());
        return trace;
    };

    std::int64_t root = intern(0, rt.initial(), 0, 0, 0);
    RC_ASSERT(root == 0);
    states[0].parent = 0;

    std::deque<std::uint32_t> frontier{0};
    bool truncated = false;
    std::uint32_t truncated_depth = 0;

    // Scratch successor state, reused across every edge: the copy
    // assignment below reuses its live-set buffer instead of
    // allocating a fresh vector per edge.
    sva::PropertyRuntime::State scratch = rt.initial();

    while (!frontier.empty()) {
        std::uint32_t id = frontier.front();
        frontier.pop_front();

        sva::Tri status = rt.status(states[id].prop);
        if (status == sva::Tri::Failed) {
            result.status = ProofStatus::Falsified;
            result.counterexample = tracePath(id);
            result.productStates = states.size();
            result.checkSeconds = secondsSince(t0);
            return result;
        }
        if (status == sva::Tri::Matched)
            continue; // satisfied on every extension of this path

        if (max_states && states.size() >= max_states) {
            truncated = true;
            // The proof is only valid up to the shallowest state
            // left unexpanded; take the minimum over the whole
            // frontier rather than trusting queue order.
            truncated_depth = states[id].depth;
            for (std::uint32_t f : frontier)
                truncated_depth =
                    std::min(truncated_depth, states[f].depth);
            break;
        }

        for (const GraphEdge &e : graph.outEdges(states[id].node)) {
            scratch = states[id].prop;
            rt.step(scratch, graph.maskOf(e.maskId));
            std::int64_t nid = intern(e.dst, scratch, id, e.input,
                                      states[id].depth + 1);
            if (nid >= 0)
                frontier.push_back(static_cast<std::uint32_t>(nid));
        }
    }

    result.productStates = states.size();
    if (!truncated && graph.complete()) {
        result.status = ProofStatus::Proven;
    } else {
        result.status = ProofStatus::Bounded;
        std::uint32_t bound = graph.exploredDepth();
        if (truncated)
            bound = std::min(bound, truncated_depth);
        result.boundCycles = bound;
    }
    result.checkSeconds = secondsSince(t0);
    return result;
}

} // namespace

VerifyResult
verify(const rtl::Netlist &netlist, const sva::PredicateTable &preds,
       const std::vector<Assumption> &assumptions,
       const std::vector<sva::Property> &properties,
       const EngineConfig &config)
{
    VerifyResult result;

    auto t0 = Clock::now();
    ExploreLimits limits;
    limits.maxNodes = config.exploreMaxNodes;
    StateGraph graph(netlist, assumptions, preds, limits);
    result.exploreSeconds = secondsSince(t0);

    result.graphNodes = graph.numNodes();
    result.graphEdges = graph.numEdges();
    result.graphComplete = graph.complete();
    result.graphDepth = graph.exploredDepth();

    bool any_cover = false;
    bool have_cover_assumption = false;
    for (const Assumption &a : assumptions)
        have_cover_assumption |=
            a.kind == Assumption::Kind::FinalValueCover;
    for (const CoverHit &hit : graph.coverHits()) {
        if (hit.reached) {
            any_cover = true;
            WitnessTrace w;
            w.inputs = graph.pathTo(hit.node);
            w.inputs.push_back(hit.input);
            result.coverWitness = w;
        }
    }
    result.coverReached = any_cover;
    result.coverUnreachable =
        have_cover_assumption && !any_cover && graph.complete();

    // Property checks are independent NFA products over the (now
    // immutable) graph: fan them out across a pool, each check
    // writing its own input-order slot, so the result is identical
    // to the serial engine at any lane count.
    auto t1 = Clock::now();
    std::size_t jobs =
        config.jobs ? config.jobs : ThreadPool::defaultJobs();
    result.properties.resize(properties.size());
    if (jobs > 1 && properties.size() > 1) {
        ThreadPool pool(jobs);
        pool.parallelFor(properties.size(), [&](std::size_t i) {
            result.properties[i] = checkProperty(
                graph, properties[i], config.productMaxStates);
        });
        result.checkJobs = jobs;
    } else {
        for (std::size_t i = 0; i < properties.size(); ++i)
            result.properties[i] = checkProperty(
                graph, properties[i], config.productMaxStates);
    }
    result.checkSeconds = secondsSince(t1);
    return result;
}

} // namespace rtlcheck::formal
