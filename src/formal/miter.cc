#include "formal/miter.hh"

#include <chrono>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace rtlcheck::formal {

namespace {

/** Human name of one state slot: register name or "mem[word]". */
std::string
slotName(const rtl::Netlist &netlist, std::size_t slot)
{
    const auto &regs = netlist.regs();
    if (slot < regs.size())
        return regs[slot].name;
    const auto &mems = netlist.mems();
    for (std::size_t i = 0; i < mems.size(); ++i) {
        if (!netlist.memInState(static_cast<std::uint32_t>(i)))
            continue;
        const rtl::MemHandle handle{static_cast<std::uint32_t>(i)};
        const std::size_t base = netlist.stateSlotOfMemWord(handle, 0);
        if (slot >= base && slot < base + mems[i].words)
            return catStr(mems[i].name, "[", slot - base, "]");
    }
    return catStr("slot ", slot);
}

} // namespace

std::string
equivVerdictName(EquivVerdict v)
{
    switch (v) {
      case EquivVerdict::Equivalent: return "equivalent";
      case EquivVerdict::Different: return "different";
      case EquivVerdict::Unknown: return "unknown";
    }
    return "?";
}

MiterSession::MiterSession(const rtl::Netlist &pristine,
                           const sva::PredicateTable &preds)
    : _pristine(pristine), _preds(preds), _cnf(_solver),
      _ua(_cnf, pristine, preds, _noAssumptions)
{
    // The pristine base every check() diffs against: one cycle from
    // a free symbolic state under symbolic inputs. Encoded outside
    // any clause group, so it persists for the session's lifetime.
    _ua.pushFreeFrame();
    _ua.attachInputs(0);
    _ua.pushTransition();
}

double
MiterSession::reuseRate() const
{
    const std::size_t total = _coneHits + _coneGates;
    return total ? static_cast<double>(_coneHits) / total : 0.0;
}

MiterResult
MiterSession::check(const rtl::Netlist &mutant,
                    std::uint64_t conflictBudget,
                    const std::atomic<bool> *cancel)
{
    const auto start = std::chrono::steady_clock::now();
    MiterResult result;

    RC_ASSERT(_pristine.stateWords() == mutant.stateWords()
                  && _pristine.inputs().size()
                         == mutant.inputs().size(),
              "miter requires identical state and input layouts");

    const std::uint64_t conflicts0 = _solver.stats().conflicts;
    const std::size_t gates0 = _cnf.numGates();
    const std::size_t hits0 = _cnf.cacheHits();
    ++_checks;

    // Everything the mutant adds — its cone, the difference
    // observables, the query OR — lives in this group and is retired
    // before we return; only learned clauses over the pristine base
    // survive into the next check.
    _cnf.pushFrame();
    bmc::Unroller ub(_cnf, mutant, _preds, _noAssumptions);
    ub.pushSharedFrame(_ua);
    ub.attachSharedInputs(0, _ua);
    ub.pushTransition();

    // Observables: every registered predicate of the shared cycle,
    // then every state slot of the post-transition image.
    std::vector<std::pair<sat::Lit, std::string>> diffs;
    for (int p = 0; p < _preds.size(); ++p) {
        sat::Lit d = _cnf.mkXor(_ua.predLit(0, p), ub.predLit(0, p));
        if (_cnf.isConst(d) && !_cnf.constValue(d))
            continue;
        diffs.emplace_back(d, catStr("pred ", _preds.textOf(p)));
    }
    for (std::size_t slot = 0; slot < _pristine.stateWords();
         ++slot) {
        const sat::Bits &sa = _ua.stateBits(1, slot);
        const sat::Bits &sb = ub.stateBits(1, slot);
        sat::Lit d = ~_cnf.bvEq(sa, sb);
        if (_cnf.isConst(d) && !_cnf.constValue(d))
            continue;
        diffs.emplace_back(d, catStr("state ", slotName(_pristine,
                                                        slot)));
    }

    auto finish = [&](EquivVerdict verdict) {
        result.verdict = verdict;
        result.conflicts = _solver.stats().conflicts - conflicts0;
        result.clauses = _solver.numClauses();
        const std::size_t gates = _cnf.numGates() - gates0;
        const std::size_t hits = _cnf.cacheHits() - hits0;
        _coneGates += gates;
        _coneHits += hits;
        result.reuseRate =
            (gates + hits)
                ? static_cast<double>(hits) / (gates + hits)
                : 1.0;
        result.seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        _cnf.popFrame();
        return result;
    };

    // Structural hashing already folded every observable onto the
    // same literal: equivalent without touching the solver.
    if (diffs.empty())
        return finish(EquivVerdict::Equivalent);

    std::vector<sat::Lit> diffLits;
    diffLits.reserve(diffs.size());
    for (const auto &[lit, name] : diffs)
        diffLits.push_back(lit);
    sat::Lit any_diff = _cnf.mkOrN(diffLits);

    _solver.setConflictBudget(conflictBudget, /*cumulative=*/true);
    _solver.setCancel(cancel);
    // Assumption, not unit: the query dies with the clause group
    // while the solver stays consistent for the next mutant.
    sat::Result sat = _solver.solve({any_diff});
    _solver.setCancel(nullptr);
    _solver.setConflictBudget(0);
    if (sat == sat::Result::Unsat)
        return finish(EquivVerdict::Equivalent);
    if (sat == sat::Result::Unknown)
        return finish(EquivVerdict::Unknown);

    for (const auto &[lit, name] : diffs) {
        if (_solver.modelTrue(lit)) {
            result.firstDiff = name;
            break;
        }
    }
    return finish(EquivVerdict::Different);
}

MiterResult
proveTransitionEquivalent(const rtl::Netlist &a, const rtl::Netlist &b,
                          const sva::PredicateTable &preds,
                          std::uint64_t conflictBudget,
                          const std::atomic<bool> *cancel)
{
    MiterSession session(a, preds);
    return session.check(b, conflictBudget, cancel);
}

} // namespace rtlcheck::formal
