#include "formal/miter.hh"

#include <chrono>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "formal/bmc/unroller.hh"
#include "sat/cnf.hh"
#include "sat/solver.hh"

namespace rtlcheck::formal {

namespace {

/** Human name of one state slot: register name or "mem[word]". */
std::string
slotName(const rtl::Netlist &netlist, std::size_t slot)
{
    const auto &regs = netlist.regs();
    if (slot < regs.size())
        return regs[slot].name;
    const auto &mems = netlist.mems();
    for (std::size_t i = 0; i < mems.size(); ++i) {
        if (!netlist.memInState(static_cast<std::uint32_t>(i)))
            continue;
        const rtl::MemHandle handle{static_cast<std::uint32_t>(i)};
        const std::size_t base = netlist.stateSlotOfMemWord(handle, 0);
        if (slot >= base && slot < base + mems[i].words)
            return catStr(mems[i].name, "[", slot - base, "]");
    }
    return catStr("slot ", slot);
}

} // namespace

std::string
equivVerdictName(EquivVerdict v)
{
    switch (v) {
      case EquivVerdict::Equivalent: return "equivalent";
      case EquivVerdict::Different: return "different";
      case EquivVerdict::Unknown: return "unknown";
    }
    return "?";
}

MiterResult
proveTransitionEquivalent(const rtl::Netlist &a, const rtl::Netlist &b,
                          const sva::PredicateTable &preds,
                          std::uint64_t conflictBudget,
                          const std::atomic<bool> *cancel)
{
    const auto start = std::chrono::steady_clock::now();
    MiterResult result;

    RC_ASSERT(a.stateWords() == b.stateWords()
                  && a.inputs().size() == b.inputs().size(),
              "miter requires identical state and input layouts");

    sat::Solver solver;
    sat::CnfBuilder cnf(solver);
    // The unrollers are built without assumptions: equivalence must
    // hold from *every* state for pruning to be sound, not just the
    // reachable states of one litmus test.
    const std::vector<Assumption> noAssumptions;
    bmc::Unroller ua(cnf, a, preds, noAssumptions);
    bmc::Unroller ub(cnf, b, preds, noAssumptions);

    ua.pushFreeFrame();
    ua.attachInputs(0);
    ua.pushTransition();
    ub.pushSharedFrame(ua);
    ub.attachSharedInputs(0, ua);
    ub.pushTransition();

    // Observables: every registered predicate of the shared cycle,
    // then every state slot of the post-transition image.
    std::vector<std::pair<sat::Lit, std::string>> diffs;
    for (int p = 0; p < preds.size(); ++p) {
        sat::Lit d = cnf.mkXor(ua.predLit(0, p), ub.predLit(0, p));
        if (cnf.isConst(d) && !cnf.constValue(d))
            continue;
        diffs.emplace_back(d, catStr("pred ", preds.textOf(p)));
    }
    for (std::size_t slot = 0; slot < a.stateWords(); ++slot) {
        const sat::Bits &sa = ua.stateBits(1, slot);
        const sat::Bits &sb = ub.stateBits(1, slot);
        sat::Lit d = ~cnf.bvEq(sa, sb);
        if (cnf.isConst(d) && !cnf.constValue(d))
            continue;
        diffs.emplace_back(d, catStr("state ", slotName(a, slot)));
    }

    auto finish = [&](EquivVerdict verdict) {
        result.verdict = verdict;
        result.conflicts = solver.stats().conflicts;
        result.clauses = solver.numClauses();
        result.seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        return result;
    };

    // Structural hashing already folded every observable onto the
    // same literal: equivalent without touching the solver.
    if (diffs.empty())
        return finish(EquivVerdict::Equivalent);

    std::vector<sat::Lit> diffLits;
    diffLits.reserve(diffs.size());
    for (const auto &[lit, name] : diffs)
        diffLits.push_back(lit);
    cnf.require(cnf.mkOrN(diffLits));

    solver.setConflictBudget(conflictBudget);
    solver.setCancel(cancel);
    sat::Result sat = solver.solve();
    if (sat == sat::Result::Unsat)
        return finish(EquivVerdict::Equivalent);
    if (sat == sat::Result::Unknown)
        return finish(EquivVerdict::Unknown);

    for (const auto &[lit, name] : diffs) {
        if (solver.modelTrue(lit)) {
            result.firstDiff = name;
            break;
        }
    }
    return finish(EquivVerdict::Different);
}

} // namespace rtlcheck::formal
