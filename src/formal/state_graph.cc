#include "state_graph.hh"

#include <algorithm>
#include <deque>

#include "common/hashing.hh"
#include "common/logging.hh"

namespace rtlcheck::formal {

StateGraph::StateGraph(const rtl::Netlist &netlist,
                       const std::vector<Assumption> &assumptions,
                       const sva::PredicateTable &preds,
                       const ExploreLimits &limits)
    : _initial(netlist.initialState())
{
    // Apply initial-state pins and collect the per-cycle assumptions.
    std::vector<const Assumption *> implications;
    std::vector<const Assumption *> covers;
    for (const Assumption &a : assumptions) {
        switch (a.kind) {
          case Assumption::Kind::InitialPin:
            RC_ASSERT(a.stateSlot < _initial.size());
            _initial[a.stateSlot] = a.value;
            break;
          case Assumption::Kind::Implication:
            implications.push_back(&a);
            break;
          case Assumption::Kind::FinalValueCover:
            // A final-value assumption both prunes (executions that
            // halt with the wrong final memory are invalid) and is
            // the target of the cover search (§4.1).
            covers.push_back(&a);
            implications.push_back(&a);
            break;
        }
    }
    _covers.assign(covers.size(), CoverHit{});

    // Input enumeration: the flattened valuation is the
    // concatenation of all primary inputs, LSB-first. Decode every
    // combo once here; the BFS loop indexes the table.
    unsigned total_bits = 0;
    for (const auto &in : netlist.inputs()) {
        _inputWidths.push_back(in.width);
        total_bits += in.width;
    }
    RC_ASSERT(total_bits <= 8,
              "too many free input bits for exhaustive enumeration");
    _numInputs = 1u << total_bits;
    _inputTable.reserve(_numInputs);
    for (unsigned combo = 0; combo < _numInputs; ++combo) {
        rtl::InputVec inputs(_inputWidths.size());
        unsigned shift = 0;
        for (std::size_t i = 0; i < _inputWidths.size(); ++i) {
            inputs[i] = (combo >> shift) &
                        ((1u << _inputWidths[i]) - 1);
            shift += _inputWidths[i];
        }
        _inputTable.push_back(std::move(inputs));
    }

    const std::size_t words = netlist.stateWords();
    auto stateAt = [&](std::uint32_t id) {
        return _stateArena.data() +
               static_cast<std::size_t>(id) * words;
    };

    // Size the dedup table and arena up front: growth rehashes and
    // arena reallocs otherwise dominate large explorations. For
    // bounded runs the node count is known; unlimited runs get a
    // generous floor and grow from there.
    const std::size_t expected =
        limits.maxNodes ? limits.maxNodes + limits.maxNodes / 2
                        : 4096;
    _dedup.reserve(expected);
    _stateArena.reserve(expected * words);
    _edges.reserve(expected);
    _depth.reserve(expected);
    _parent.reserve(expected);

    auto intern = [&](const rtl::StateVec &s,
                      bool &is_new) -> std::uint32_t {
        std::uint64_t h = hashWords(s);
        auto &bucket = _dedup[h];
        for (std::uint32_t id : bucket) {
            if (std::equal(s.begin(), s.end(), stateAt(id))) {
                is_new = false;
                return id;
            }
        }
        std::uint32_t id = static_cast<std::uint32_t>(_edges.size());
        _stateArena.insert(_stateArena.end(), s.begin(), s.end());
        _edges.emplace_back();
        _depth.push_back(0);
        _parent.push_back({id, 0});
        bucket.push_back(id);
        is_new = true;
        return id;
    };

    bool is_new = false;
    std::uint32_t root = intern(_initial, is_new);
    std::deque<std::uint32_t> frontier{root};

    rtl::ValueVec values;
    rtl::StateVec next;
    std::uint32_t truncated_at_depth = 0;
    bool truncated = false;
    std::size_t covers_left = covers.size();

    while (!frontier.empty()) {
        std::uint32_t node = frontier.front();
        frontier.pop_front();
        if (limits.maxNodes && _expanded >= limits.maxNodes) {
            truncated = true;
            truncated_at_depth = _depth[node];
            break;
        }
        ++_expanded;

        // Copy the state out of the arena: intern() may reallocate.
        rtl::StateVec state(stateAt(node), stateAt(node) + words);
        _edges[node].reserve(_numInputs);

        for (unsigned combo = 0; combo < _numInputs; ++combo) {
            const rtl::InputVec &inputs = _inputTable[combo];
            netlist.eval(state.data(), inputs.data(), values);
            sva::PredMask mask = preds.evaluate(netlist, values);

            // Assumption pruning: a cycle that violates an
            // implication invalidates every trace through it.
            bool ok = true;
            for (const Assumption *imp : implications) {
                if (sva::predTrue(mask, imp->antecedent) &&
                    !sva::predTrue(mask, imp->consequent)) {
                    ok = false;
                    break;
                }
            }
            if (!ok)
                continue;

            if (covers_left) {
                for (std::size_t ci = 0; ci < covers.size(); ++ci) {
                    if (_covers[ci].reached)
                        continue;
                    if (sva::predTrue(mask, covers[ci]->antecedent) &&
                        sva::predTrue(mask, covers[ci]->consequent)) {
                        _covers[ci] = CoverHit{
                            true, node,
                            static_cast<std::uint8_t>(combo)};
                        --covers_left;
                    }
                }
            }

            netlist.nextState(state.data(), values.data(), next);
            bool fresh = false;
            std::uint32_t dst = intern(next, fresh);
            if (fresh) {
                _depth[dst] = _depth[node] + 1;
                _parent[dst] = {node, static_cast<std::uint8_t>(combo)};
                frontier.push_back(dst);
            }
            _edges[node].push_back(GraphEdge{
                dst, internMask(mask),
                static_cast<std::uint8_t>(combo)});
            ++_numEdges;
        }
    }

    _complete = !truncated;
    if (_complete) {
        std::uint32_t max_depth = 0;
        for (std::uint32_t d : _depth)
            max_depth = std::max(max_depth, d);
        // Fully explored: every trace of any length is represented.
        _exploredDepth = max_depth;
    } else {
        // BFS order: every state at depth < truncated_at_depth was
        // expanded, so traces up to that length are complete.
        _exploredDepth = truncated_at_depth;
    }
}

std::uint32_t
StateGraph::internMask(const sva::PredMask &mask)
{
    std::uint64_t h = 0;
    for (std::uint64_t w : mask)
        h = hashCombine(h, w);
    auto &bucket = _maskIndex[h];
    for (std::uint32_t id : bucket)
        if (_maskTable[id] == mask)
            return id;
    std::uint32_t id = static_cast<std::uint32_t>(_maskTable.size());
    _maskTable.push_back(mask);
    bucket.push_back(id);
    return id;
}

std::vector<std::uint8_t>
StateGraph::pathTo(std::uint32_t node) const
{
    std::vector<std::uint8_t> inputs;
    std::uint32_t cur = node;
    while (_parent[cur].first != cur) {
        inputs.push_back(_parent[cur].second);
        cur = _parent[cur].first;
    }
    std::reverse(inputs.begin(), inputs.end());
    return inputs;
}

const std::vector<GraphEdge> GraphView::_noEdges;

GraphView::GraphView(const StateGraph *graph, std::size_t max_nodes)
    : _graph(graph)
{
    const std::size_t expanded = graph->expandedNodes();
    if (max_nodes == 0 || max_nodes >= expanded) {
        // Pass-through: the request is no stricter than what the
        // graph already explored.
        _cutoff = expanded;
        _truncated = false;
        _numNodes = graph->numNodes();
        _numEdges = graph->numEdges();
        _complete = graph->complete();
        _exploredDepth = graph->exploredDepth();
        return;
    }

    // Reconstruct the bounded run's shape from the prefix. Nodes are
    // expanded in id order, so the bounded run expanded exactly ids
    // [0, max_nodes); it had discovered every destination of those
    // edges (ids are contiguous in discovery order), and it stopped
    // at the depth of the first unexpanded node.
    _cutoff = max_nodes;
    _truncated = true;
    _complete = false;
    _exploredDepth = graph->depthOf(
        static_cast<std::uint32_t>(max_nodes));
    std::size_t max_seen = max_nodes; // ids 0..max_nodes-1 exist
    for (std::size_t n = 0; n < max_nodes; ++n) {
        const auto &edges =
            graph->outEdges(static_cast<std::uint32_t>(n));
        _numEdges += edges.size();
        for (const GraphEdge &e : edges)
            max_seen =
                std::max(max_seen, static_cast<std::size_t>(e.dst) + 1);
    }
    _numNodes = max_seen;

    // A cover hit found while expanding a node past the cutoff was
    // never seen by the bounded run.
    _coverStorage = graph->coverHits();
    for (CoverHit &hit : _coverStorage) {
        if (hit.reached && hit.node >= max_nodes)
            hit = CoverHit{};
    }
}

} // namespace rtlcheck::formal
