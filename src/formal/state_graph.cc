#include "state_graph.hh"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "common/hashing.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace rtlcheck::formal {

namespace {

// Sentinels of the concurrent dedup table's id slots. Committed node
// ids occupy [0, kClaimBit); in-level claims are published as
// kClaimBit | claim-index and rewritten to their final id during the
// serial commit pass.
constexpr std::uint32_t kEmptySlot = 0xffffffffu;
constexpr std::uint32_t kBusySlot = 0xfffffffeu;
constexpr std::uint32_t kClaimBit = 0x80000000u;

// Fewer parallel tasks than this and a level is expanded inline: the
// per-level fork/join costs more than the evaluation it spreads.
constexpr std::size_t kParallelGrain = 64;

} // namespace

StateGraph::StateGraph(const rtl::Netlist &netlist,
                       const std::vector<Assumption> &assumptions,
                       const sva::PredicateTable &preds,
                       const ExploreLimits &limits,
                       ExploreObserver *observer)
    : _initial(netlist.initialState()), _packing(netlist.packing())
{
    // Apply initial-state pins and collect the per-cycle assumptions.
    std::vector<const Assumption *> implications;
    std::vector<const Assumption *> covers;
    for (const Assumption &a : assumptions) {
        switch (a.kind) {
          case Assumption::Kind::InitialPin:
            RC_ASSERT(a.stateSlot < _initial.size());
            _initial[a.stateSlot] = a.value;
            break;
          case Assumption::Kind::Implication:
            implications.push_back(&a);
            break;
          case Assumption::Kind::FinalValueCover:
            // A final-value assumption both prunes (executions that
            // halt with the wrong final memory are invalid) and is
            // the target of the cover search (§4.1).
            covers.push_back(&a);
            implications.push_back(&a);
            break;
        }
    }
    _covers.assign(covers.size(), CoverHit{});
    RC_ASSERT(covers.size() <= 64,
              "cover bitmap limited to 64 per exploration");

    // Packed dedup is injective only on states that fit their
    // declared widths; eval() guarantees that for every successor, so
    // checking the (pinned) root covers all reachable states.
    RC_ASSERT(_packing.fits(_initial.data()),
              "pinned initial state exceeds declared widths");

    // Input enumeration: the flattened valuation is the
    // concatenation of all primary inputs, LSB-first. Decode every
    // combo once here; the BFS loop indexes the table.
    unsigned total_bits = 0;
    for (const auto &in : netlist.inputs()) {
        _inputWidths.push_back(in.width);
        total_bits += in.width;
    }
    RC_ASSERT(total_bits <= 8,
              "too many free input bits for exhaustive enumeration");
    _numInputs = 1u << total_bits;
    _inputTable.reserve(_numInputs);
    for (unsigned combo = 0; combo < _numInputs; ++combo) {
        rtl::InputVec inputs(_inputWidths.size());
        unsigned shift = 0;
        for (std::size_t i = 0; i < _inputWidths.size(); ++i) {
            inputs[i] = (combo >> shift) &
                        ((1u << _inputWidths[i]) - 1);
            shift += _inputWidths[i];
        }
        _inputTable.push_back(std::move(inputs));
    }

    const std::size_t uw = _initial.size();
    const std::size_t pw = _packing.packedWords();
    _packedWords = pw;

    // Size the arena and metadata up front: growth reallocs
    // otherwise dominate large explorations. For bounded runs the
    // node count is known; unlimited runs get a generous floor.
    const std::size_t expected =
        limits.maxNodes ? limits.maxNodes + limits.maxNodes / 2
                        : 4096;
    _stateArena.reserve(expected * pw);
    _edges.reserve(expected);
    _depth.reserve(expected);
    _parent.reserve(expected);

    // ---- concurrent dedup table (scoped to construction) ----
    //
    // Open addressing over two parallel arrays: plain 64-bit hashes
    // and atomic 32-bit ids. Insertion CASes an id slot from empty to
    // busy, writes the hash and its claim bookkeeping, then publishes
    // the claim reference with a release store; probers acquire-load
    // the id and may then safely read the hash and the claimed state.
    // The table is sized before each level so it never grows while
    // lanes are probing, and it is freed once exploration finishes —
    // the graph itself keeps only the packed arena.
    std::size_t cap = 1024;
    std::vector<std::uint64_t> slotHash(cap, 0);
    std::unique_ptr<std::atomic<std::uint32_t>[]> slotId(
        new std::atomic<std::uint32_t>[cap]);
    for (std::size_t i = 0; i < cap; ++i)
        slotId[i].store(kEmptySlot, std::memory_order_relaxed);
    std::vector<std::uint64_t> nodeHash; // per committed node
    nodeHash.reserve(expected);

    auto packedOf = [&](std::uint32_t id) {
        return _stateArena.data() +
               static_cast<std::size_t>(id) * pw;
    };

    // Serial-only: append a committed node (id = discovery order).
    auto commitNode = [&](const std::uint32_t *packed,
                          std::uint64_t h, std::uint32_t parent,
                          std::uint8_t input,
                          std::uint32_t depth) -> std::uint32_t {
        const std::uint32_t id =
            static_cast<std::uint32_t>(_edges.size());
        RC_ASSERT(id < kClaimBit, "state graph node id overflow");
        _stateArena.insert(_stateArena.end(), packed, packed + pw);
        _edges.emplace_back();
        _depth.push_back(depth);
        _parent.push_back({parent, input});
        nodeHash.push_back(h);
        return id;
    };

    // Serial-only: insert a committed node into the table.
    auto publish = [&](std::uint32_t id) {
        std::size_t idx = nodeHash[id] & (cap - 1);
        while (slotId[idx].load(std::memory_order_relaxed) !=
               kEmptySlot)
            idx = (idx + 1) & (cap - 1);
        slotHash[idx] = nodeHash[id];
        slotId[idx].store(id, std::memory_order_relaxed);
    };

    // Serial-only, between levels: keep the load factor under 1/2 for
    // the worst case (every task of the next level claims a slot).
    auto ensureCapacity = [&](std::size_t needed) {
        if (needed * 2 <= cap)
            return;
        while (cap < needed * 2)
            cap <<= 1;
        slotHash.assign(cap, 0);
        slotId.reset(new std::atomic<std::uint32_t>[cap]);
        for (std::size_t i = 0; i < cap; ++i)
            slotId[i].store(kEmptySlot, std::memory_order_relaxed);
        for (std::uint32_t id = 0;
             id < static_cast<std::uint32_t>(_edges.size()); ++id)
            publish(id);
    };

    // ---- per-level staging ----
    //
    // Task index ("flat") = level-node index * numInputs + combo.
    // Lanes write results only into their own task's slots, so the
    // parallel phase needs no synchronization beyond the dedup table.
    struct EdgeTask
    {
        sva::PredMask mask{};
        std::uint64_t hash = 0;
        std::uint64_t coverMask = 0;
        std::uint32_t dstRef = 0;
        bool pruned = false;
    };
    std::vector<EdgeTask> results;
    std::vector<std::uint32_t> staging; // candidate packed states
    std::vector<std::uint32_t> claimFlat; // claim -> creating task
    std::vector<std::uint32_t> claimSlot; // claim -> table slot
    std::vector<std::uint32_t> claimFinal; // claim -> committed id
    std::atomic<std::uint32_t> claimCount{0};

    // Find the state's committed id, or claim it as new. Every lane
    // probing an equal state walks the same probe sequence from the
    // same hash and never passes the first empty slot of that
    // sequence without either claiming it or comparing against its
    // occupant — so one state can never be claimed twice.
    auto claimOrFind = [&](const std::uint32_t *cand,
                           std::uint64_t h,
                           std::uint32_t flat) -> std::uint32_t {
        std::size_t idx = h & (cap - 1);
        for (;;) {
            std::uint32_t id =
                slotId[idx].load(std::memory_order_acquire);
            if (id == kEmptySlot) {
                std::uint32_t expected = kEmptySlot;
                if (slotId[idx].compare_exchange_strong(
                        expected, kBusySlot,
                        std::memory_order_acq_rel)) {
                    const std::uint32_t ci = claimCount.fetch_add(
                        1, std::memory_order_relaxed);
                    claimFlat[ci] = flat;
                    claimSlot[ci] =
                        static_cast<std::uint32_t>(idx);
                    slotHash[idx] = h;
                    slotId[idx].store(kClaimBit | ci,
                                      std::memory_order_release);
                    return kClaimBit | ci;
                }
                continue; // lost the race; re-examine this slot
            }
            if (id == kBusySlot)
                continue; // claimant is publishing; spin briefly
            if (slotHash[idx] == h) {
                const std::uint32_t *other =
                    (id & kClaimBit)
                        ? staging.data() +
                              static_cast<std::size_t>(
                                  claimFlat[id & ~kClaimBit]) *
                                  pw
                        : packedOf(id);
                if (std::memcmp(other, cand,
                                pw * sizeof(std::uint32_t)) == 0)
                    return id;
            }
            idx = (idx + 1) & (cap - 1);
        }
    };

    // Interned-mask table, also scoped to construction.
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>
        maskIndex;
    auto internMask =
        [&](const sva::PredMask &mask) -> std::uint32_t {
        std::uint64_t h = 0;
        for (std::uint64_t w : mask)
            h = hashCombine(h, w);
        auto &bucket = maskIndex[h];
        for (std::uint32_t id : bucket)
            if (_maskTable[id] == mask)
                return id;
        std::uint32_t id =
            static_cast<std::uint32_t>(_maskTable.size());
        _maskTable.push_back(mask);
        bucket.push_back(id);
        return id;
    };

    // Root: pack the pinned initial state and commit it as node 0.
    {
        std::vector<std::uint32_t> packed(pw, 0);
        _packing.pack(_initial.data(), packed.data());
        commitNode(packed.data(), hashWords(packed.data(), pw), 0, 0,
                   0);
        publish(0);
    }

    const std::size_t jobs =
        limits.jobs ? limits.jobs : ThreadPool::defaultJobs();
    ThreadPool *pool = nullptr; // bound on the first wide level

    std::vector<std::size_t> coverPending; // unreached cover indices
    std::size_t covers_left = covers.size();
    bool truncated = false;
    std::uint32_t truncated_at_depth = 0;

    std::size_t levelBegin = 0;
    std::size_t levelEnd = 1;
    while (levelBegin < levelEnd) {
        const std::uint32_t depth =
            _depth[levelBegin];
        const std::size_t levelCount = levelEnd - levelBegin;
        std::size_t expandCount = levelCount;
        if (limits.maxNodes) {
            const std::size_t left = limits.maxNodes > _expanded
                                         ? limits.maxNodes - _expanded
                                         : 0;
            if (left < levelCount) {
                // Same cut the serial FIFO makes: the first node it
                // would have popped without expanding is at this
                // level's depth.
                truncated = true;
                expandCount = left;
                truncated_at_depth = depth;
            }
        }
        if (expandCount == 0)
            break;

        const std::size_t tasks = expandCount * _numInputs;
        ensureCapacity(_edges.size() + tasks);
        results.resize(tasks);
        staging.resize(tasks * pw);
        claimFlat.resize(tasks);
        claimSlot.resize(tasks);
        claimFinal.assign(tasks, kEmptySlot);
        claimCount.store(0, std::memory_order_relaxed);
        coverPending.clear();
        for (std::size_t ci = 0; ci < covers.size(); ++ci)
            if (!_covers[ci].reached)
                coverPending.push_back(ci);

        // Phase A (parallel): evaluate every (node, combo) of the
        // level into its own staging slot. The arena is read-only
        // here; only the dedup table is shared-mutable.
        auto expandRange = [&](std::size_t begin, std::size_t end) {
            rtl::ValueVec values;
            rtl::StateVec state(uw);
            rtl::StateVec next;
            for (std::size_t li = begin; li < end; ++li) {
                const std::uint32_t node = static_cast<std::uint32_t>(
                    levelBegin + li);
                _packing.unpack(packedOf(node), state.data());
                for (unsigned combo = 0; combo < _numInputs;
                     ++combo) {
                    const std::uint32_t flat =
                        static_cast<std::uint32_t>(
                            li * _numInputs + combo);
                    EdgeTask &task = results[flat];
                    netlist.eval(state.data(),
                                 _inputTable[combo].data(), values);
                    sva::PredMask mask =
                        preds.evaluate(netlist, values);

                    // Assumption pruning: a cycle that violates an
                    // implication invalidates every trace through it.
                    bool ok = true;
                    for (const Assumption *imp : implications) {
                        if (sva::predTrue(mask, imp->antecedent) &&
                            !sva::predTrue(mask, imp->consequent)) {
                            ok = false;
                            break;
                        }
                    }
                    task.pruned = !ok;
                    if (!ok)
                        continue;
                    task.mask = mask;

                    std::uint64_t cm = 0;
                    for (std::size_t ci : coverPending) {
                        if (sva::predTrue(mask,
                                          covers[ci]->antecedent) &&
                            sva::predTrue(mask,
                                          covers[ci]->consequent))
                            cm |= std::uint64_t(1) << ci;
                    }
                    task.coverMask = cm;

                    netlist.nextState(state.data(), values.data(),
                                      next);
                    std::uint32_t *cand =
                        staging.data() +
                        static_cast<std::size_t>(flat) * pw;
                    _packing.pack(next.data(), cand);
                    task.hash = hashWords(cand, pw);
                    task.dstRef =
                        claimOrFind(cand, task.hash, flat);
                }
            }
        };

        if (jobs > 1 && tasks >= kParallelGrain) {
            if (!pool)
                pool = &ThreadPool::shared(jobs);
            pool->parallelChunks(expandCount, expandRange);
        } else {
            expandRange(0, expandCount);
        }
        _expanded += expandCount;

        // Phase B (serial commit): walk tasks in (node, combo) order
        // — the exact order the serial FIFO expands — and assign new
        // ids on first encounter, so the numbering is independent of
        // which lane claimed a state first.
        for (std::size_t n = 0; n < expandCount; ++n)
            _edges[levelBegin + n].reserve(_numInputs);
        for (std::size_t flat = 0; flat < tasks; ++flat) {
            const EdgeTask &task = results[flat];
            if (task.pruned)
                continue;
            const std::uint32_t src = static_cast<std::uint32_t>(
                levelBegin + flat / _numInputs);
            const std::uint8_t combo =
                static_cast<std::uint8_t>(flat % _numInputs);

            if (covers_left && task.coverMask) {
                for (std::size_t ci = 0; ci < covers.size(); ++ci) {
                    if (_covers[ci].reached ||
                        !((task.coverMask >> ci) & 1))
                        continue;
                    _covers[ci] = CoverHit{true, src, combo};
                    --covers_left;
                }
            }

            std::uint32_t dst;
            if (task.dstRef & kClaimBit) {
                const std::uint32_t ci = task.dstRef & ~kClaimBit;
                if (claimFinal[ci] == kEmptySlot) {
                    dst = commitNode(
                        staging.data() +
                            static_cast<std::size_t>(flat) * pw,
                        task.hash, src, combo, depth + 1);
                    claimFinal[ci] = dst;
                    slotId[claimSlot[ci]].store(
                        dst, std::memory_order_relaxed);
                } else {
                    dst = claimFinal[ci];
                }
            } else {
                dst = task.dstRef;
            }

            _edges[src].push_back(
                GraphEdge{dst, internMask(task.mask), combo});
            ++_numEdges;
        }

        if (observer)
            observer->onLevelCommitted(*this, _expanded, depth);
        if (truncated)
            break;
        levelBegin = levelEnd;
        levelEnd = _edges.size();
    }

    _complete = !truncated;
    if (_complete) {
        std::uint32_t max_depth = 0;
        for (std::uint32_t d : _depth)
            max_depth = std::max(max_depth, d);
        // Fully explored: every trace of any length is represented.
        _exploredDepth = max_depth;
    } else {
        // BFS order: every state at depth < truncated_at_depth was
        // expanded, so traces up to that length are complete.
        _exploredDepth = truncated_at_depth;
    }
}

std::vector<std::uint8_t>
StateGraph::pathTo(std::uint32_t node) const
{
    std::vector<std::uint8_t> inputs;
    std::uint32_t cur = node;
    while (_parent[cur].first != cur) {
        inputs.push_back(_parent[cur].second);
        cur = _parent[cur].first;
    }
    std::reverse(inputs.begin(), inputs.end());
    return inputs;
}

std::size_t
StateGraph::memoryBytes() const
{
    std::size_t bytes =
        _stateArena.capacity() * sizeof(std::uint32_t);
    bytes += _edges.capacity() * sizeof(std::vector<GraphEdge>);
    for (const auto &e : _edges)
        bytes += e.capacity() * sizeof(GraphEdge);
    bytes += _depth.capacity() * sizeof(std::uint32_t);
    bytes += _parent.capacity() *
             sizeof(std::pair<std::uint32_t, std::uint8_t>);
    bytes += _maskTable.capacity() * sizeof(sva::PredMask);
    for (const rtl::InputVec &in : _inputTable)
        bytes += in.capacity() * sizeof(std::uint32_t);
    return bytes;
}

bool
StateGraph::replayMatches(const rtl::Netlist &netlist,
                          std::uint32_t node) const
{
    rtl::StateVec state = _initial;
    rtl::ValueVec values;
    rtl::StateVec next;
    for (std::uint8_t combo : pathTo(node)) {
        netlist.eval(state.data(), _inputTable[combo].data(),
                     values);
        netlist.nextState(state.data(), values.data(), next);
        state.swap(next);
    }
    std::vector<std::uint32_t> packed(_packedWords, 0);
    _packing.pack(state.data(), packed.data());
    return std::memcmp(packed.data(), packedStateOf(node),
                       _packedWords * sizeof(std::uint32_t)) == 0;
}

const std::vector<GraphEdge> GraphView::_noEdges;

GraphView::GraphView(const StateGraph *graph, std::size_t max_nodes)
    : _graph(graph)
{
    const std::size_t expanded = graph->expandedNodes();
    if (max_nodes == 0 || max_nodes >= expanded) {
        // Pass-through: the request is no stricter than what the
        // graph already explored.
        _cutoff = expanded;
        _truncated = false;
        _numNodes = graph->numNodes();
        _numEdges = graph->numEdges();
        _complete = graph->complete();
        _exploredDepth = graph->exploredDepth();
        return;
    }

    // Reconstruct the bounded run's shape from the prefix. Nodes are
    // expanded in id order, so the bounded run expanded exactly ids
    // [0, max_nodes); it had discovered every destination of those
    // edges (ids are contiguous in discovery order), and it stopped
    // at the depth of the first unexpanded node.
    _cutoff = max_nodes;
    _truncated = true;
    _complete = false;
    _exploredDepth = graph->depthOf(
        static_cast<std::uint32_t>(max_nodes));
    std::size_t max_seen = max_nodes; // ids 0..max_nodes-1 exist
    for (std::size_t n = 0; n < max_nodes; ++n) {
        const auto &edges =
            graph->outEdges(static_cast<std::uint32_t>(n));
        _numEdges += edges.size();
        for (const GraphEdge &e : edges)
            max_seen =
                std::max(max_seen, static_cast<std::size_t>(e.dst) + 1);
    }
    _numNodes = max_seen;

    // A cover hit found while expanding a node past the cutoff was
    // never seen by the bounded run.
    _coverStorage = graph->coverHits();
    for (CoverHit &hit : _coverStorage) {
        if (hit.reached && hit.node >= max_nodes)
            hit = CoverHit{};
    }
}

} // namespace rtlcheck::formal
