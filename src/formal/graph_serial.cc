#include "graph_serial.hh"

#include "common/serialize.hh"

namespace rtlcheck::formal {

namespace {

bool
fail(std::string *error, const char *why)
{
    if (error)
        *error = why;
    return false;
}

} // namespace

std::vector<std::uint8_t>
GraphSerializer::serialize(const StateGraph &g)
{
    ByteWriter w;
    w.u32(kGraphFormatVersion);

    w.u32vec(g._initial);

    // StatePacking fields, written member-wise (the struct has
    // padding, so a raw dump would leak indeterminate bytes and
    // break byte-identity).
    w.u64(g._packing._fields.size());
    for (const auto &f : g._packing._fields) {
        w.u32(f.word);
        w.u8(f.shift);
        w.u32(f.mask);
    }
    w.u64(g._packing._packedWords);
    w.u64(g._packedWords);

    w.u64(g._edges.size());
    for (const auto &out : g._edges) {
        w.u64(out.size());
        for (const GraphEdge &e : out) {
            w.u32(e.dst);
            w.u32(e.maskId);
            w.u8(e.input);
        }
    }

    w.u32vec(g._depth);
    w.u64(g._parent.size());
    for (const auto &p : g._parent) {
        w.u32(p.first);
        w.u8(p.second);
    }

    w.u64(g._covers.size());
    for (const CoverHit &c : g._covers) {
        w.boolean(c.reached);
        w.u32(c.node);
        w.u8(c.input);
    }

    w.u32vec(g._stateArena);

    w.u64(g._maskTable.size());
    for (const sva::PredMask &m : g._maskTable)
        for (std::uint64_t word : m)
            w.u64(word);

    w.u64(g._numEdges);
    w.u64(g._expanded);
    w.boolean(g._complete);
    w.u32(g._exploredDepth);
    w.u32(g._numInputs);

    w.u64(g._inputWidths.size());
    for (unsigned width : g._inputWidths)
        w.u32(width);
    w.u64(g._inputTable.size());
    for (const rtl::InputVec &in : g._inputTable)
        w.u32vec(in);

    return w.take();
}

std::shared_ptr<StateGraph>
GraphSerializer::deserialize(const std::uint8_t *data,
                             std::size_t size, std::string *error)
{
    ByteReader r(data, size);

    const std::uint32_t version = r.u32();
    if (!r.ok())
        return fail(error, "truncated header"), nullptr;
    if (version != kGraphFormatVersion)
        return fail(error, "graph format version mismatch"), nullptr;

    auto g = std::shared_ptr<StateGraph>(new StateGraph());

    g->_initial = r.u32vec();

    const std::uint64_t num_fields = r.u64();
    if (!r.checkedElems(num_fields, 9))
        return fail(error, "truncated packing"), nullptr;
    g->_packing._fields.resize(
        static_cast<std::size_t>(num_fields));
    for (auto &f : g->_packing._fields) {
        f.word = r.u32();
        f.shift = r.u8();
        f.mask = r.u32();
    }
    g->_packing._packedWords = static_cast<std::size_t>(r.u64());
    g->_packedWords = static_cast<std::size_t>(r.u64());

    const std::uint64_t num_nodes = r.u64();
    if (!r.checkedElems(num_nodes, 8))
        return fail(error, "truncated node table"), nullptr;
    g->_edges.resize(static_cast<std::size_t>(num_nodes));
    for (auto &out : g->_edges) {
        const std::uint64_t degree = r.u64();
        if (!r.checkedElems(degree, 9))
            return fail(error, "truncated edge list"), nullptr;
        out.resize(static_cast<std::size_t>(degree));
        for (GraphEdge &e : out) {
            e.dst = r.u32();
            e.maskId = r.u32();
            e.input = r.u8();
        }
    }

    g->_depth = r.u32vec();
    const std::uint64_t num_parents = r.u64();
    if (!r.checkedElems(num_parents, 5))
        return fail(error, "truncated parent table"), nullptr;
    g->_parent.resize(static_cast<std::size_t>(num_parents));
    for (auto &p : g->_parent) {
        p.first = r.u32();
        p.second = r.u8();
    }

    const std::uint64_t num_covers = r.u64();
    if (!r.checkedElems(num_covers, 6))
        return fail(error, "truncated cover table"), nullptr;
    g->_covers.resize(static_cast<std::size_t>(num_covers));
    for (CoverHit &c : g->_covers) {
        c.reached = r.boolean();
        c.node = r.u32();
        c.input = r.u8();
    }

    g->_stateArena = r.u32vec();

    const std::uint64_t num_masks = r.u64();
    if (!r.checkedElems(num_masks, sizeof(sva::PredMask)))
        return fail(error, "truncated mask table"), nullptr;
    g->_maskTable.resize(static_cast<std::size_t>(num_masks));
    for (sva::PredMask &m : g->_maskTable)
        for (std::uint64_t &word : m)
            word = r.u64();

    g->_numEdges = r.u64();
    g->_expanded = static_cast<std::size_t>(r.u64());
    g->_complete = r.boolean();
    g->_exploredDepth = r.u32();
    g->_numInputs = r.u32();

    const std::uint64_t num_widths = r.u64();
    if (!r.checkedElems(num_widths, 4))
        return fail(error, "truncated input widths"), nullptr;
    g->_inputWidths.resize(static_cast<std::size_t>(num_widths));
    for (unsigned &width : g->_inputWidths)
        width = r.u32();
    const std::uint64_t num_inputs = r.u64();
    if (!r.checkedElems(num_inputs, 8))
        return fail(error, "truncated input table"), nullptr;
    g->_inputTable.resize(static_cast<std::size_t>(num_inputs));
    for (rtl::InputVec &in : g->_inputTable)
        in = r.u32vec();

    if (!r.atEnd())
        return fail(error, "truncated or oversized payload"), nullptr;

    // Structural invariants: every cross-array index must be in
    // range before anyone walks the graph.
    const std::size_t n = g->_edges.size();
    if (g->_depth.size() != n || g->_parent.size() != n)
        return fail(error, "inconsistent node tables"), nullptr;
    if (g->_expanded > n)
        return fail(error, "expanded count out of range"), nullptr;
    if (g->_packedWords != g->_packing._packedWords ||
        g->_stateArena.size() != n * g->_packedWords)
        return fail(error, "state arena size mismatch"), nullptr;
    if (g->_packing._fields.size() != g->_initial.size())
        return fail(error, "packing/initial size mismatch"), nullptr;
    if (g->_numInputs != g->_inputTable.size())
        return fail(error, "input table size mismatch"), nullptr;
    std::uint64_t edge_count = 0;
    for (std::uint32_t node = 0; node < n; ++node) {
        for (const GraphEdge &e : g->_edges[node]) {
            ++edge_count;
            if (e.dst >= n || e.maskId >= g->_maskTable.size() ||
                e.input >= g->_numInputs)
                return fail(error, "edge index out of range"), nullptr;
        }
        if (g->_parent[node].first >= n ||
            (node > 0 && g->_parent[node].second >= g->_numInputs))
            return fail(error, "parent index out of range"), nullptr;
    }
    if (edge_count != g->_numEdges)
        return fail(error, "edge count mismatch"), nullptr;
    for (const CoverHit &c : g->_covers)
        if (c.reached &&
            (c.node >= n || c.input >= g->_numInputs))
            return fail(error, "cover index out of range"), nullptr;

    return g;
}

} // namespace rtlcheck::formal
