/**
 * @file
 * SAT miter for pruning functionally-equivalent mutants.
 *
 * Two netlists with identical state/input layouts are unrolled for
 * one cycle from a *shared free symbolic state* under *shared
 * symbolic inputs*, on one CnfBuilder so structural hashing folds
 * their unmutated cones onto the same literals. The miter asserts
 * that some observable differs: a registered predicate in the
 * combinational cycle, or a state slot of the post-transition image.
 *
 * UNSAT means the two transition functions and observation functions
 * agree on *every* state — mutated and original are bisimilar from
 * any start state, so no litmus test (which only constrains initial
 * state and inputs) can ever distinguish them. That makes Equivalent
 * a sound pruning verdict, not a heuristic: an equivalent mutant is
 * removed from the campaign rather than misreported as a survivor.
 *
 * SAT means the machines differ somewhere; whether the litmus suite
 * reaches that somewhere is exactly what the campaign measures.
 * Unknown (conflict budget or cancellation) is treated by callers as
 * "not proven equivalent" — the mutant stays in the campaign.
 */

#ifndef RTLCHECK_FORMAL_MITER_HH
#define RTLCHECK_FORMAL_MITER_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "rtl/netlist.hh"
#include "sva/predicates.hh"

namespace rtlcheck::formal {

enum class EquivVerdict : std::uint8_t
{
    Equivalent, ///< UNSAT: bisimilar from every state; prune
    Different,  ///< SAT: a distinguishing state+input exists
    Unknown,    ///< budget exhausted or cancelled; keep the mutant
};

std::string equivVerdictName(EquivVerdict v);

struct MiterResult
{
    EquivVerdict verdict = EquivVerdict::Unknown;
    /** First differing observable of the SAT model: a predicate's
     *  SVA text or a state slot's register/memory-word name. */
    std::string firstDiff;
    double seconds = 0.0;
    std::uint64_t conflicts = 0;
    std::size_t clauses = 0;
};

/**
 * Prove or refute one-cycle transition-function equivalence of `a`
 * and `b` (same design, one mutated) over the observables in
 * `preds`. Layouts must match; the campaign guarantees this because
 * mutations never add or remove state, inputs, or memories.
 *
 * `conflictBudget` bounds the CDCL search (0 = unlimited); `cancel`
 * allows cooperative cancellation from portfolio racing.
 */
MiterResult proveTransitionEquivalent(
    const rtl::Netlist &a, const rtl::Netlist &b,
    const sva::PredicateTable &preds,
    std::uint64_t conflictBudget = 0,
    const std::atomic<bool> *cancel = nullptr);

} // namespace rtlcheck::formal

#endif // RTLCHECK_FORMAL_MITER_HH
