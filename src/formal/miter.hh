/**
 * @file
 * SAT miter for pruning functionally-equivalent mutants.
 *
 * Two netlists with identical state/input layouts are unrolled for
 * one cycle from a *shared free symbolic state* under *shared
 * symbolic inputs*, on one CnfBuilder so structural hashing folds
 * their unmutated cones onto the same literals. The miter asserts
 * that some observable differs: a registered predicate in the
 * combinational cycle, or a state slot of the post-transition image.
 *
 * UNSAT means the two transition functions and observation functions
 * agree on *every* state — mutated and original are bisimilar from
 * any start state, so no litmus test (which only constrains initial
 * state and inputs) can ever distinguish them. That makes Equivalent
 * a sound pruning verdict, not a heuristic: an equivalent mutant is
 * removed from the campaign rather than misreported as a survivor.
 *
 * SAT means the machines differ somewhere; whether the litmus suite
 * reaches that somewhere is exactly what the campaign measures.
 * Unknown (conflict budget or cancellation) is treated by callers as
 * "not proven equivalent" — the mutant stays in the campaign.
 *
 * MiterSession amortizes the pristine side across a whole mutant
 * catalog: the base CNF is encoded once and each mutant's delta cone
 * lives in a retirable solver clause group, so learned clauses and
 * structural-hash folds persist from mutant to mutant.
 */

#ifndef RTLCHECK_FORMAL_MITER_HH
#define RTLCHECK_FORMAL_MITER_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "formal/assumptions.hh"
#include "formal/bmc/unroller.hh"
#include "rtl/netlist.hh"
#include "sat/cnf.hh"
#include "sat/solver.hh"
#include "sva/predicates.hh"

namespace rtlcheck::formal {

enum class EquivVerdict : std::uint8_t
{
    Equivalent, ///< UNSAT: bisimilar from every state; prune
    Different,  ///< SAT: a distinguishing state+input exists
    Unknown,    ///< budget exhausted or cancelled; keep the mutant
};

std::string equivVerdictName(EquivVerdict v);

struct MiterResult
{
    EquivVerdict verdict = EquivVerdict::Unknown;
    /** First differing observable of the SAT model: a predicate's
     *  SVA text or a state slot's register/memory-word name. */
    std::string firstDiff;
    double seconds = 0.0;
    std::uint64_t conflicts = 0;
    std::size_t clauses = 0;
    /** Fraction of this check's gate requests answered by the
     *  structural-hash cache instead of fresh clauses — how much of
     *  the mutant's cone folded onto the pristine base CNF. */
    double reuseRate = 0.0;
};

/**
 * Incremental miter: the pristine machine's one-cycle unrolling
 * (free shared state, symbolic inputs, transition image) is encoded
 * once, then each check() encodes only the mutant's delta cone inside
 * a solver clause group that is retired when the check returns. All
 * checks share one solver, so learned clauses over the pristine base
 * carry from mutant to mutant, and structural hashing folds every
 * unmutated cone onto the persistent pristine literals.
 *
 * check() verdicts match proveTransitionEquivalent() on the same
 * pair: the base CNF is identical and the difference query is solved
 * under an assumption instead of a unit, which cannot change
 * SAT/UNSAT status.
 */
class MiterSession
{
  public:
    /** `pristine` and `preds` must outlive the session. */
    MiterSession(const rtl::Netlist &pristine,
                 const sva::PredicateTable &preds);

    /** Check one mutant against the pristine base. `mutant` must
     *  share the pristine state/input layout (the mutation catalog
     *  guarantees this). The conflict budget spans the whole check
     *  (cumulative across its solves). */
    MiterResult check(const rtl::Netlist &mutant,
                      std::uint64_t conflictBudget = 0,
                      const std::atomic<bool> *cancel = nullptr);

    /** Mutants checked so far. */
    std::size_t numChecks() const { return _checks; }
    /** Gate literals freshly emitted across all checks (the delta
     *  cones), and gate requests served by the persistent base. */
    std::size_t coneGates() const { return _coneGates; }
    std::size_t coneCacheHits() const { return _coneHits; }
    /** coneCacheHits / (coneCacheHits + coneGates); 0 before the
     *  first check. */
    double reuseRate() const;
    /** Shared solver's counters (solves, conflicts, learned-clause
     *  reuse, frames) over the whole session. */
    const sat::Solver::Stats &solverStats() const
    {
        return _solver.stats();
    }

  private:
    const rtl::Netlist &_pristine;
    const sva::PredicateTable &_preds;
    /** Equivalence must hold from *every* state, so the unrollers
     *  carry no assumptions. */
    std::vector<Assumption> _noAssumptions;
    sat::Solver _solver;
    sat::CnfBuilder _cnf;
    bmc::Unroller _ua;
    std::size_t _checks = 0;
    std::size_t _coneGates = 0;
    std::size_t _coneHits = 0;
};

/**
 * Prove or refute one-cycle transition-function equivalence of `a`
 * and `b` (same design, one mutated) over the observables in
 * `preds`. Layouts must match; the campaign guarantees this because
 * mutations never add or remove state, inputs, or memories.
 *
 * `conflictBudget` bounds the CDCL search (0 = unlimited); `cancel`
 * allows cooperative cancellation from portfolio racing.
 */
MiterResult proveTransitionEquivalent(
    const rtl::Netlist &a, const rtl::Netlist &b,
    const sva::PredicateTable &preds,
    std::uint64_t conflictBudget = 0,
    const std::atomic<bool> *cancel = nullptr);

} // namespace rtlcheck::formal

#endif // RTLCHECK_FORMAL_MITER_HH
