/**
 * @file
 * Check-style microarchitectural verification (paper §2.1, Figure 4a).
 *
 * The solver instantiates the µspec model omnisciently on a litmus
 * test's outcome under test, then searches for a *consistent,
 * acyclic* scenario: a choice of one DNF branch per axiom instance
 * whose AddEdge atoms form an acyclic graph in which every positive
 * EdgeExists literal has a supporting path and no negated edge
 * literal does. If such a scenario exists, the outcome is observable
 * at the microarchitecture level; for the SC-forbidden outcomes in
 * our suite, every scenario must be cyclic or inconsistent.
 */

#ifndef RTLCHECK_UHB_SOLVER_HH
#define RTLCHECK_UHB_SOLVER_HH

#include <cstdint>
#include <memory>
#include <optional>

#include "litmus/test.hh"
#include "uhb/graph.hh"
#include "uspec/ast.hh"
#include "uspec/eval.hh"

namespace rtlcheck::uhb {

struct SolveResult
{
    bool observable = false;
    /** Scenarios (complete branch choices) examined. */
    std::uint64_t scenariosExplored = 0;
    /** Witness graph when observable. */
    std::optional<UhbGraph> witness;
    /** Axiom instances that participated. */
    int numInstances = 0;
};

/**
 * Decide whether the test's outcome under test is observable on the
 * modeled microarchitecture.
 */
SolveResult checkOutcome(const uspec::Model &model,
                         const litmus::Test &test);

} // namespace rtlcheck::uhb

#endif // RTLCHECK_UHB_SOLVER_HH
