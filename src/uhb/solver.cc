#include "solver.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rtlcheck::uhb {

using uspec::Branch;
using uspec::EdgeLit;

namespace {

/** One axiom instance prepared for search. */
struct SearchItem
{
    std::vector<Branch> branches;
};

class Search
{
  public:
    Search(const litmus::Test &test,
           std::vector<SearchItem> items)
        : _graph(test), _items(std::move(items))
    {
    }

    SolveResult
    run()
    {
        SolveResult result;
        result.numInstances = static_cast<int>(_items.size());
        // Single-branch instances are forced: apply them first so
        // their edges prune everything below.
        std::stable_sort(_items.begin(), _items.end(),
                         [](const SearchItem &a, const SearchItem &b) {
                             return a.branches.size() <
                                    b.branches.size();
                         });
        _result = &result;
        recurse(0);
        return result;
    }

  private:
    /** Apply a branch's AddEdge literals; returns false on cycle or
     *  on an already-contradicted negated literal. Since paths only
     *  grow down the search, a negated edge literal contradicted now
     *  stays contradicted at every leaf below, so pruning here is
     *  sound and keeps implication-style axioms from exploding the
     *  search. */
    bool
    applyBranch(const Branch &branch)
    {
        for (const EdgeLit &lit : branch.edges) {
            int s = _graph.nodeId(lit.src);
            int d = _graph.nodeId(lit.dst);
            if (!lit.positive) {
                if (s == d || _graph.hasPath(s, d))
                    return false;
                continue;
            }
            if (!lit.isAdd)
                continue; // positive EdgeExists: checked at the leaf
            if (_graph.hasEdge(s, d))
                continue;
            if (_graph.wouldCreateCycle(s, d))
                return false;
            _graph.addEdge(s, d, lit.label);
        }
        return true;
    }

    /** Leaf check: positive EdgeExists need paths; negated edge
     *  literals must have no path. */
    bool
    leafConsistent() const
    {
        for (const auto &item : _leafBranches) {
            for (const EdgeLit &lit : *item) {
                int s = _graph.nodeId(lit.src);
                int d = _graph.nodeId(lit.dst);
                if (lit.positive && !lit.isAdd) {
                    if (!(s == d ? false : _graph.hasPath(s, d)) &&
                        !_graph.hasEdge(s, d))
                        return false;
                }
                if (!lit.positive) {
                    if (s == d || _graph.hasPath(s, d))
                        return false;
                }
            }
        }
        return true;
    }

    void
    recurse(std::size_t idx)
    {
        if (_result->observable)
            return;
        if (idx == _items.size()) {
            ++_result->scenariosExplored;
            if (leafConsistent()) {
                _result->observable = true;
                _result->witness = _graph;
            }
            return;
        }
        for (const Branch &branch : _items[idx].branches) {
            UhbGraph saved = _graph;
            if (applyBranch(branch)) {
                _leafBranches.push_back(&branch.edges);
                recurse(idx + 1);
                _leafBranches.pop_back();
            }
            _graph = std::move(saved);
            if (_result->observable)
                return;
        }
    }

    UhbGraph _graph;
    std::vector<SearchItem> _items;
    std::vector<const std::vector<EdgeLit> *> _leafBranches;
    SolveResult *_result = nullptr;
};

} // namespace

SolveResult
checkOutcome(const uspec::Model &model, const litmus::Test &test)
{
    auto instances =
        uspec::instantiate(model, test, uspec::EvalMode::Omniscient);

    std::vector<SearchItem> items;
    for (const auto &inst : instances) {
        SearchItem item;
        item.branches = uspec::toDnf(inst.formula);
        if (item.branches.empty()) {
            // An axiom instance is unsatisfiable outright: the
            // outcome is unobservable regardless of other choices.
            SolveResult r;
            r.observable = false;
            r.numInstances = static_cast<int>(instances.size());
            return r;
        }
        items.push_back(std::move(item));
    }

    return Search(test, std::move(items)).run();
}

} // namespace rtlcheck::uhb
