#include "graph.hh"

#include <sstream>

#include "common/logging.hh"

namespace rtlcheck::uhb {

using uspec::numStages;

UhbGraph::UhbGraph(const litmus::Test &test)
    : _refs(test.allRefs())
{
    _numNodes = static_cast<int>(_refs.size()) * numStages;
    RC_ASSERT(_numNodes <= 64, "µhb graph too large for bitmask "
              "adjacency (", _numNodes, " nodes)");
    _adj.assign(static_cast<std::size_t>(_numNodes), 0);
}

int
UhbGraph::nodeId(const uspec::UhbNode &node) const
{
    for (std::size_t i = 0; i < _refs.size(); ++i) {
        if (_refs[i] == node.instr)
            return static_cast<int>(i) * numStages +
                   static_cast<int>(node.stage);
    }
    RC_PANIC("µhb node references an instruction outside the test");
}

uspec::UhbNode
UhbGraph::nodeOf(int id) const
{
    RC_ASSERT(id >= 0 && id < _numNodes);
    uspec::UhbNode node;
    node.instr = _refs[static_cast<std::size_t>(id / numStages)];
    node.stage = static_cast<uspec::Stage>(id % numStages);
    return node;
}

void
UhbGraph::addEdge(int src, int dst, const std::string &label)
{
    RC_ASSERT(src >= 0 && src < _numNodes && dst >= 0 &&
              dst < _numNodes);
    if (hasEdge(src, dst))
        return;
    _adj[static_cast<std::size_t>(src)] |= std::uint64_t(1) << dst;
    _edges.push_back(Edge{src, dst, label});
}

void
UhbGraph::addEdge(const uspec::UhbNode &src, const uspec::UhbNode &dst,
                  const std::string &label)
{
    addEdge(nodeId(src), nodeId(dst), label);
}

bool
UhbGraph::hasEdge(int src, int dst) const
{
    return (_adj[static_cast<std::size_t>(src)] >> dst) & 1;
}

bool
UhbGraph::hasPath(int src, int dst) const
{
    std::uint64_t visited = 0;
    std::uint64_t frontier = _adj[static_cast<std::size_t>(src)];
    while (frontier) {
        if ((frontier >> dst) & 1)
            return true;
        visited |= frontier;
        std::uint64_t next = 0;
        std::uint64_t f = frontier;
        while (f) {
            int n = __builtin_ctzll(f);
            f &= f - 1;
            next |= _adj[static_cast<std::size_t>(n)];
        }
        frontier = next & ~visited;
    }
    return false;
}

bool
UhbGraph::isCyclic() const
{
    for (int n = 0; n < _numNodes; ++n)
        if (hasPath(n, n))
            return true;
    return false;
}

void
UhbGraph::clear()
{
    _adj.assign(static_cast<std::size_t>(_numNodes), 0);
    _edges.clear();
}

std::string
UhbGraph::toDot(const litmus::Test &test) const
{
    std::ostringstream oss;
    oss << "digraph uhb {\n  rankdir=TB;\n";
    for (int id = 0; id < _numNodes; ++id) {
        uspec::UhbNode node = nodeOf(id);
        const litmus::Instr &in = test.instrAt(node.instr);
        oss << "  n" << id << " [label=\"(i" << node.instr.thread
            << "." << node.instr.index << ") "
            << (in.type == litmus::OpType::Store ? "St " : "Ld ")
            << litmus::Test::addressName(in.address) << " @"
            << uspec::stageName(node.stage) << "\"];\n";
    }
    for (const Edge &e : _edges) {
        oss << "  n" << e.src << " -> n" << e.dst;
        if (!e.label.empty())
            oss << " [label=\"" << e.label << "\"]";
        oss << ";\n";
    }
    oss << "}\n";
    return oss.str();
}

} // namespace rtlcheck::uhb
