/**
 * @file
 * Microarchitectural happens-before (µhb) graphs.
 *
 * Nodes are (instruction, pipeline stage) pairs; edges are known
 * happens-before relationships (paper §2.1, Figure 3a). A cycle
 * proves the depicted execution impossible, which is the core of
 * Check-style microarchitectural verification.
 */

#ifndef RTLCHECK_UHB_GRAPH_HH
#define RTLCHECK_UHB_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "litmus/test.hh"
#include "uspec/formula.hh"

namespace rtlcheck::uhb {

/**
 * Dense µhb graph over the nodes of one litmus test. Node ids are
 * instrIndex * numStages + stage, where instrIndex follows
 * litmus::Test::allRefs() order.
 */
class UhbGraph
{
  public:
    explicit UhbGraph(const litmus::Test &test);

    int numNodes() const { return _numNodes; }

    int nodeId(const uspec::UhbNode &node) const;
    uspec::UhbNode nodeOf(int id) const;

    /** Add a directed edge (idempotent). */
    void addEdge(int src, int dst, const std::string &label = "");
    void addEdge(const uspec::UhbNode &src, const uspec::UhbNode &dst,
                 const std::string &label = "");

    bool hasEdge(int src, int dst) const;

    /** True iff a directed path src -> dst exists (length >= 1). */
    bool hasPath(int src, int dst) const;

    /** True iff the graph contains a directed cycle. */
    bool isCyclic() const;

    /** Would adding src -> dst create a cycle? */
    bool
    wouldCreateCycle(int src, int dst) const
    {
        return src == dst || hasPath(dst, src);
    }

    /** Remove all edges (keeps the node universe). */
    void clear();

    /** Edge list with labels, for rendering. */
    struct Edge
    {
        int src;
        int dst;
        std::string label;
    };
    const std::vector<Edge> &edges() const { return _edges; }

    /** GraphViz dot rendering in the style of Figure 3a. */
    std::string toDot(const litmus::Test &test) const;

  private:
    int _numNodes = 0;
    std::vector<std::uint64_t> _adj;  ///< adjacency bitmasks
    std::vector<Edge> _edges;
    std::vector<litmus::InstrRef> _refs;
};

} // namespace rtlcheck::uhb

#endif // RTLCHECK_UHB_GRAPH_HH
