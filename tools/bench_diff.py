#!/usr/bin/env python3
"""Diff two BENCH_*.json files produced by the bench binaries.

Usage:
    tools/bench_diff.py OLD.json NEW.json [--threshold PCT]

Every numeric field is flattened to a dotted path (array elements are
keyed by their identifying string fields, e.g. ``cells[mp/fixed]``)
and compared. Timing fields (path contains "seconds" or "ms") are
lower-is-better and reported as speedup (old/new). Other numeric
fields — solver-stats counters (sat_solves, sat_conflicts,
sat_learned_reuse, frames, miter_* cells), sweep sizes, derived
ratios — have no better/worse direction, so they are reported as a
delta, never as a speedup, and never count toward the regression
gate. Booleans and strings are reported when they change.

Exit status is 1 when --threshold is given and any timing field
regressed by more than PCT percent, so CI can gate on it; without
--threshold the tool only reports.
"""

import argparse
import json
import sys

TIMING_MARKERS = ("seconds", "_ms", "time")


def is_timing(path):
    low = path.lower()
    return any(m in low for m in TIMING_MARKERS)


def element_key(value, index):
    """Stable label for an array element: join its string fields."""
    if isinstance(value, dict):
        tags = [str(v) for v in value.values() if isinstance(v, str)]
        if tags:
            return "/".join(tags)
    return str(index)


def flatten(value, path, out):
    if isinstance(value, dict):
        for k, v in value.items():
            flatten(v, f"{path}.{k}" if path else k, out)
    elif isinstance(value, list):
        for i, v in enumerate(value):
            flatten(v, f"{path}[{element_key(v, i)}]", out)
    else:
        out[path] = value


def fmt(value):
    if isinstance(value, float):
        return f"{value:.6f}"
    return str(value)


def main():
    ap = argparse.ArgumentParser(
        description="Diff two BENCH_*.json files")
    ap.add_argument("old")
    ap.add_argument("new")
    ap.add_argument("--threshold", type=float, default=None,
                    help="fail (exit 1) when any timing field "
                         "regresses by more than PCT percent")
    args = ap.parse_args()

    with open(args.old) as f:
        old = {}
        flatten(json.load(f), "", old)
    with open(args.new) as f:
        new = {}
        flatten(json.load(f), "", new)

    regressions = []
    rows = []
    for path in sorted(set(old) | set(new)):
        if path not in old:
            rows.append((path, "(added)", fmt(new[path]), ""))
            continue
        if path not in new:
            rows.append((path, fmt(old[path]), "(removed)", ""))
            continue
        a, b = old[path], new[path]
        numeric = (isinstance(a, (int, float))
                   and isinstance(b, (int, float))
                   and not isinstance(a, bool)
                   and not isinstance(b, bool))
        if numeric and is_timing(path):
            if a == b == 0:
                continue
            if a == 0 or b == 0:
                # A zero cell means the bench skipped or could not
                # time this field; a ratio against it is noise, not
                # a speedup or regression.
                rows.append((path, fmt(a), fmt(b),
                             "     n/a (zero cell)"))
                continue
            speedup = a / b
            delta_pct = (b - a) / a * 100.0
            note = f"{speedup:8.3f}x"
            if delta_pct > 0:
                note += f"  ({delta_pct:+.1f}% regression)"
                if (args.threshold is not None
                        and delta_pct > args.threshold):
                    regressions.append((path, delta_pct))
            elif delta_pct < 0:
                note += f"  ({delta_pct:+.1f}%)"
            rows.append((path, fmt(a), fmt(b), note))
        elif numeric:
            # Counters and derived ratios: direction-free, so a plain
            # delta — a speedup reading would be meaningless and must
            # never feed the regression gate.
            if a == b:
                continue
            delta = b - a
            if isinstance(a, int) and isinstance(b, int):
                note = f"   {delta:+d}"
            else:
                note = f"   {delta:+.6f}"
            if a != 0:
                note += f" ({(b - a) / a * 100.0:+.1f}%)"
            rows.append((path, fmt(a), fmt(b), note))
        elif a != b:
            rows.append((path, fmt(a), fmt(b), "CHANGED"))

    if not rows:
        print("no differences")
        return 0

    width = max(len(r[0]) for r in rows)
    print(f"{'field':<{width}}  {'old':>12}  {'new':>12}  speedup")
    for path, a, b, note in rows:
        print(f"{path:<{width}}  {a:>12}  {b:>12}  {note}")

    if regressions:
        print(f"\n{len(regressions)} timing regression(s) over "
              f"{args.threshold:.1f}%:", file=sys.stderr)
        for path, pct in regressions:
            print(f"  {path}: {pct:+.1f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
