/**
 * @file
 * rtlcheckd: the standalone verification daemon.
 *
 * Usage:
 *   rtlcheckd --socket <path> [--store <dir>] [--workers N]
 *             [--cache-mb N] [--no-cone-reuse] [--no-graph-persist]
 *
 * Binds an AF_UNIX socket and serves verification requests until
 * SIGTERM/SIGINT (graceful: in-flight jobs finish, queued jobs are
 * failed explicitly, the socket is unlinked) or a client sends the
 * `shutdown` command. Talk to it with `rtlcheck_cli --client` or any
 * program speaking the framed key=value protocol of
 * src/service/protocol.hh.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/daemon.hh"

using namespace rtlcheck;

namespace {

service::Daemon *g_daemon = nullptr;

void
onSignal(int)
{
    if (g_daemon)
        g_daemon->requestStop();
}

void
usage()
{
    std::printf(
        "usage: rtlcheckd --socket <path> [options]\n"
        "options: --store <dir>      persistent artifact store root\n"
        "         --workers N        verification threads (default:\n"
        "                            hardware concurrency)\n"
        "         --cache-mb N       graph-cache budget (0 =\n"
        "                            unlimited)\n"
        "         --no-cone-reuse    disable cone-key verdict reuse\n"
        "         --no-graph-persist do not spill state graphs to\n"
        "                            the store\n");
}

std::size_t
parseCount(const std::string &flag, const std::string &value)
{
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos) {
        std::fprintf(stderr, "rtlcheckd: bad value '%s' for %s\n",
                     value.c_str(), flag.c_str());
        usage();
        std::exit(2);
    }
    return static_cast<std::size_t>(
        std::strtoul(value.c_str(), nullptr, 10));
}

} // namespace

int
main(int argc, char **argv)
{
    service::DaemonConfig config;
    std::size_t cacheMb = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "rtlcheckd: option %s needs a value\n",
                             arg.c_str());
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            config.socketPath = next();
        } else if (arg == "--store") {
            config.service.storeDir = next();
        } else if (arg == "--workers") {
            config.workers = parseCount(arg, next());
        } else if (arg == "--cache-mb") {
            cacheMb = parseCount(arg, next());
        } else if (arg == "--no-cone-reuse") {
            config.service.coneReuse = false;
        } else if (arg == "--no-graph-persist") {
            config.service.persistGraphs = false;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            return 2;
        }
    }
    if (config.socketPath.empty()) {
        usage();
        return 2;
    }
    config.service.cacheBytes = cacheMb << 20;

    service::Daemon daemon(config);
    std::string error;
    if (!daemon.start(&error)) {
        std::fprintf(stderr, "rtlcheckd: %s\n", error.c_str());
        return 1;
    }

    g_daemon = &daemon;
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    const std::string workers =
        config.workers ? std::to_string(config.workers)
                       : std::string("hw");
    std::printf("rtlcheckd: listening on %s (%s workers, store %s)\n",
                config.socketPath.c_str(), workers.c_str(),
                config.service.storeDir.empty()
                    ? "(none)"
                    : config.service.storeDir.c_str());
    std::fflush(stdout);

    daemon.run();

    service::Daemon::Stats ds = daemon.stats();
    std::printf("rtlcheckd: stopped (%llu connections, %llu "
                "requests, %llu jobs, %llu dedup joins)\n",
                static_cast<unsigned long long>(ds.connections),
                static_cast<unsigned long long>(ds.requests),
                static_cast<unsigned long long>(ds.jobs),
                static_cast<unsigned long long>(ds.dedupJoins));
    g_daemon = nullptr;
    return 0;
}
