#!/usr/bin/env python3
"""Unit tests for bench_diff.py (stdlib unittest; no pytest dep).

Run directly or via ctest:
    python3 tools/test_bench_diff.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "bench_diff.py")


def run_diff(old, new, *extra):
    with tempfile.TemporaryDirectory() as tmp:
        old_path = os.path.join(tmp, "old.json")
        new_path = os.path.join(tmp, "new.json")
        with open(old_path, "w") as f:
            json.dump(old, f)
        with open(new_path, "w") as f:
            json.dump(new, f)
        proc = subprocess.run(
            [sys.executable, TOOL, old_path, new_path, *extra],
            capture_output=True, text=True)
    return proc


class BenchDiffTest(unittest.TestCase):
    def test_reports_speedup(self):
        proc = run_diff({"wall_seconds": 2.0}, {"wall_seconds": 1.0})
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("2.000x", proc.stdout)

    def test_threshold_gates_regression(self):
        proc = run_diff({"wall_seconds": 1.0}, {"wall_seconds": 2.0},
                        "--threshold", "50")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("regression", proc.stdout + proc.stderr)

    def test_zero_baseline_is_na_not_a_regression(self):
        # A zero cell used to divide by zero / report an infinite
        # regression; it must be n/a and never trip the gate.
        proc = run_diff({"wall_seconds": 0.0}, {"wall_seconds": 2.0},
                        "--threshold", "1")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("n/a (zero cell)", proc.stdout)

    def test_zero_new_cell_is_na(self):
        proc = run_diff({"wall_seconds": 2.0}, {"wall_seconds": 0.0},
                        "--threshold", "1")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("n/a (zero cell)", proc.stdout)

    def test_both_zero_is_skipped(self):
        proc = run_diff({"wall_seconds": 0.0, "n": 1},
                        {"wall_seconds": 0.0, "n": 1})
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("no differences", proc.stdout)

    def test_missing_cells_are_added_removed(self):
        proc = run_diff({"a_seconds": 1.0}, {"b_seconds": 1.0},
                        "--threshold", "1")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("(removed)", proc.stdout)
        self.assertIn("(added)", proc.stdout)

    def test_count_fields_show_delta_not_speedup(self):
        proc = run_diff({"sat_conflicts": 1000},
                        {"sat_conflicts": 1500})
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("+500", proc.stdout)
        self.assertIn("+50.0%", proc.stdout)
        self.assertNotIn("x", proc.stdout.split("sat_conflicts")[1])

    def test_count_fields_never_trip_the_gate(self):
        # A counter doubling is not a timing regression: solver-stats
        # cells must not feed the --threshold gate.
        proc = run_diff({"sat_learned_reuse": 10, "frames_pushed": 4},
                        {"sat_learned_reuse": 20, "frames_pushed": 8},
                        "--threshold", "1")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_float_ratio_fields_show_delta(self):
        proc = run_diff({"miter_reuse_rate": 0.5},
                        {"miter_reuse_rate": 0.75})
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("+0.250000", proc.stdout)

    def test_nested_array_cells(self):
        old = {"cells": [{"test": "mp", "verify_seconds": 1.0}]}
        new = {"cells": [{"test": "mp", "verify_seconds": 4.0}]}
        proc = run_diff(old, new, "--threshold", "100")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("cells[mp]", proc.stdout)


if __name__ == "__main__":
    unittest.main()
