/**
 * @file
 * Command-line driver for the RTLCheck flow.
 *
 * Usage:
 *   rtlcheck_cli [options] <suite-test-name>
 *   rtlcheck_cli [options] --file <litmus-file>
 *   rtlcheck_cli --list
 *   rtlcheck_cli --all [options]
 *
 * Options:
 *   --model sc|tso        µspec model to verify against (default sc)
 *   --design fixed|buggy|tso
 *                         RTL design variant (default fixed)
 *   --config hybrid|full|unbounded  engine config (default full)
 *   --naive               use the §3.3 naive edge encoding (unsound;
 *                         for demonstration)
 *   --emit-sva <path>     write the generated SystemVerilog file
 *   --uhb                 also run the Check-style µhb analysis and
 *                         print the result (plus a dot witness graph
 *                         when the outcome is observable)
 *   --wave                print the witness waveform when the
 *                         forbidden outcome is reachable
 *   --vcd <path>          write the witness waveform as a VCD file
 *   --jobs N              parallel lanes for --all (whole tests run
 *                         concurrently) and for the engine's
 *                         per-property checks on single tests.
 *                         Default: $RTLCHECK_JOBS, else the
 *                         machine's hardware concurrency. Verdicts
 *                         are identical at every setting.
 *   --no-netlist-opt      skip the netlist compilation pipeline
 *                         (constant folding, copy propagation, CSE,
 *                         cone-of-influence reduction). Slower;
 *                         verdicts are identical. Single-test runs
 *                         print an opt-stats line showing what the
 *                         pipeline did.
 *   --explore-jobs N      parallel lanes for state-graph exploration
 *                         (level-synchronized frontier expansion;
 *                         see state_graph.hh). Graphs and verdicts
 *                         are bit-identical at every setting.
 *                         Default 1: under --all the suite runner
 *                         already fans whole tests out.
 *   --no-early-falsify    do not step assertion monitors during
 *                         exploration; counterexamples are then only
 *                         found by the post-exploration check phase.
 *                         Verdicts and witnesses are identical.
 *   --cache-mb N          bound the --all state-graph cache to N MiB
 *                         (LRU eviction; 0 = unlimited, the default)
 *   --engine explicit|bmc|portfolio
 *                         verification back-end: the explicit
 *                         state-graph engine (default), the SAT-based
 *                         BMC + k-induction engine, or a portfolio
 *                         race of both that takes the first
 *                         conclusive verdict
 *   --bmc-depth N         BMC unroll bound in cycles (default 16)
 *   --induction-depth N   largest k-induction window tried after the
 *                         BMC sweep (default 6; 0 disables induction
 *                         — much faster on designs whose state is too
 *                         wide for small-K windows to close)
 *   --sat-incremental / --no-sat-incremental
 *                         keep (default) or disable the incremental
 *                         SAT pipeline: depth-incremental BMC sweeps
 *                         that deepen one solver instead of
 *                         rebuilding per depth, and shared miter
 *                         sessions in --mutate that carry learned
 *                         clauses across a test's mutants. Verdict
 *                         classes, witness depths, and the kill
 *                         matrix are identical either way.
 *   --mutate              run a mutation-testing campaign instead of
 *                         a verification run: derive faulty designs
 *                         from the selected variant, prune
 *                         SAT-provably-equivalent mutants, verify the
 *                         rest against the litmus suite, and print
 *                         the kill matrix + mutation score. Defaults
 *                         to the portfolio backend with early
 *                         falsification unless --engine is given.
 *   --mutate-ops a,b,...  restrict the operator catalog (names like
 *                         write-enable-drop, stuck-at-0; default all)
 *   --mutate-budget N     cap the number of mutants (deterministic
 *                         seeded sampling; 0 = all sites)
 *   --mutate-seed N       sampling seed for --mutate-budget
 *   --mutate-tests N      run only the first N suite tests (smoke)
 *   --mutate-full-matrix  keep verifying past the first kill, filling
 *                         each mutant's whole kill-matrix row
 *   --mutate-json <path>  write the machine-readable campaign report
 *   --json                print the machine-readable suite report to
 *                         stdout instead of the human tables (--all;
 *                         see src/rtlcheck/report.hh for the format)
 *   --store <dir>         run through the verification service with a
 *                         persistent artifact store rooted at <dir>:
 *                         verdicts and state graphs are reused across
 *                         processes, and unchanged-cone tests are
 *                         answered without re-verification
 *   --store-verify        audit every artifact under --store <dir>
 *                         (checksums, headers) and exit nonzero if
 *                         any is corrupt; nothing is verified
 *   --serve               run as a verification daemon on --socket
 *                         (blocks until SIGTERM/SIGINT or a client
 *                         `--client --shutdown`); --store, --cache-mb
 *                         and --jobs (workers) apply
 *   --client              send the request to a running daemon
 *                         instead of verifying in-process: works with
 *                         <test-name>, --all, --ping, or --shutdown;
 *                         job options (--model, --design, --config,
 *                         --engine) are forwarded
 *   --socket <path>       daemon rendezvous for --serve/--client
 *                         (default /tmp/rtlcheckd.sock)
 *   --ping, --shutdown    client commands: liveness probe / ask the
 *                         daemon to stop gracefully
 *
 * Unknown flags and malformed option values (e.g. --engine jasper or
 * --jobs abc) exit with usage instead of silently defaulting.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "litmus/parser.hh"
#include "litmus/suite.hh"
#include "rtl/mutate.hh"
#include "rtlcheck/mutation_campaign.hh"
#include "rtlcheck/report.hh"
#include "rtlcheck/runner.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/service.hh"
#include "uhb/solver.hh"
#include "uspec/multivscale.hh"
#include "uspec/tso.hh"

using namespace rtlcheck;

namespace {

struct CliOptions
{
    std::string testName;
    std::string litmusFile;
    std::string model = "sc";
    std::string design = "fixed";
    std::string config = "full";
    std::string emitSva;
    std::string vcdPath;
    std::size_t jobs = 0; ///< 0 = ThreadPool::defaultJobs()
    std::size_t exploreJobs = 1;
    std::size_t cacheMb = 0; ///< 0 = unlimited
    formal::Backend engine = formal::Backend::Explicit;
    bool engineSet = false; ///< --engine given (overrides --mutate's
                            ///< portfolio default)
    std::size_t bmcDepth = 0; ///< 0 = EngineConfig default
    std::optional<std::size_t> inductionDepth; ///< unset = default
    std::vector<rtl::MutationOp> mutateOps;
    std::size_t mutateBudget = 0;
    std::uint32_t mutateSeed = 1;
    std::size_t mutateTests = 0; ///< 0 = the whole suite
    std::string mutateJson;
    bool mutate = false;
    bool mutateFullMatrix = false;
    bool synth = false;
    bool synthRun = false;
    bool synthKillLoop = false;
    bool synthFences = false;
    std::size_t synthThreads = 4;
    std::size_t synthInsns = 4;
    std::size_t synthAddrs = 4;
    std::size_t synthEdges = 6;
    std::size_t synthBudget = 0;
    std::uint32_t synthSeed = 1;
    std::size_t synthBatch = 6;
    std::size_t synthRounds = 8;
    std::string synthKeep = "sc-forbidden";
    bool satIncremental = true;
    bool earlyFalsify = true;
    bool naive = false;
    bool noNetlistOpt = false;
    bool uhb = false;
    bool wave = false;
    bool list = false;
    bool all = false;
    bool json = false;
    std::string storeDir;
    std::string socketPath = "/tmp/rtlcheckd.sock";
    bool storeVerify = false;
    bool serve = false;
    bool client = false;
    bool ping = false;
    bool shutdownDaemon = false;
};

void
usage()
{
    std::printf(
        "usage: rtlcheck_cli [options] <suite-test-name>\n"
        "       rtlcheck_cli [options] --file <litmus-file>\n"
        "       rtlcheck_cli --list | --all\n"
        "options: --model sc|tso  --design fixed|buggy|tso\n"
        "         --config hybrid|full|unbounded  --naive  --uhb\n"
        "         --wave\n"
        "         --emit-sva <path>  --jobs N  --no-netlist-opt\n"
        "         --explore-jobs N  --no-early-falsify  --cache-mb N\n"
        "         --engine explicit|bmc|portfolio  --bmc-depth N\n"
        "         --induction-depth N\n"
        "         --sat-incremental | --no-sat-incremental\n"
        "         --mutate  --mutate-ops <op,...>  --mutate-budget N\n"
        "         --mutate-seed N  --mutate-tests N\n"
        "         --mutate-full-matrix  --mutate-json <path>\n"
        "         --synth  --synth-threads N  --synth-insns N\n"
        "         --synth-addrs N  --synth-edges N  --synth-budget N\n"
        "         --synth-seed N  --synth-fences  --synth-run\n"
        "         --synth-keep all|sc-forbidden|tso-relaxed|"
        "tso-forbidden\n"
        "         --synth-kill-loop  --synth-batch N  --synth-rounds N\n"
        "         --json  --store <dir>  --store-verify\n"
        "         --serve  --client  --socket <path>  --ping\n"
        "         --shutdown\n"
        "--jobs (or $RTLCHECK_JOBS) sets the parallel lanes used to\n"
        "run tests under --all and to check properties on a single\n"
        "test; --explore-jobs parallelizes each state-graph\n"
        "exploration itself. Verdicts (and explored graphs) are\n"
        "identical at every setting. --no-early-falsify disables the\n"
        "exploration-time counterexample monitors; --cache-mb bounds\n"
        "the --all graph cache with LRU eviction.\n");
}

const uspec::Model &
modelFor(const CliOptions &opts)
{
    if (opts.model == "tso")
        return uspec::tsoVscaleModel();
    if (opts.model == "sc")
        return uspec::multiVscaleModel();
    RC_FATAL("unknown model '", opts.model, "' (sc or tso)");
}

core::RunOptions
runOptionsFor(const CliOptions &opts)
{
    core::RunOptions o;
    if (opts.design == "buggy") {
        o.variant = vscale::MemoryVariant::Buggy;
    } else if (opts.design == "tso") {
        o.pipeline = core::Pipeline::StoreBuffer;
    } else if (opts.design != "fixed") {
        RC_FATAL("unknown design '", opts.design,
                 "' (fixed, buggy, or tso)");
    }
    o.config = opts.config == "hybrid"
                   ? formal::hybridConfig()
                   : (opts.config == "unbounded"
                          ? formal::unboundedConfig()
                          : formal::fullProofConfig());
    o.encoding = opts.naive ? core::EdgeEncoding::Naive
                            : core::EdgeEncoding::Strict;
    o.optimizeNetlist = !opts.noNetlistOpt;
    o.config.exploreJobs = opts.exploreJobs;
    o.config.earlyFalsify = opts.earlyFalsify;
    o.config.backend = opts.engine;
    if (opts.bmcDepth)
        o.config.bmcDepth = opts.bmcDepth;
    if (opts.inductionDepth)
        o.config.inductionDepth = *opts.inductionDepth;
    o.config.satIncremental = opts.satIncremental;
    return o;
}

/** Print one test's result and write any requested artifacts. */
int
report(const litmus::Test &test, const core::TestRun &run,
       const core::RunOptions &o, const CliOptions &opts,
       bool verbose)
{
    const char *verdict;
    if (run.verify.numFalsified() > 0)
        verdict = "AXIOM VIOLATION";
    else if (run.verify.coverReached)
        verdict = "OUTCOME OBSERVABLE (axioms upheld)";
    else
        verdict = "VERIFIED";
    std::printf("%-14s %3d props: %3d proven %3d bounded %3d "
                "falsified | cover %-11s | %7.2f ms %s\n",
                test.name.c_str(), run.numProperties,
                run.verify.numProven(), run.verify.numBounded(),
                run.verify.numFalsified(),
                run.verify.coverUnreachable
                    ? "unreachable"
                    : (run.verify.coverReached ? "REACHED"
                                               : "bounded"),
                run.totalSeconds * 1e3, verdict);

    if (verbose) {
        const rtl::OptStats &os = run.netlistStats;
        std::printf("  netlist opt: %zu -> %zu nodes (%zu folded, "
                    "%zu mem-reads, %zu copied, %zu cse, %zu coi)\n",
                    os.nodesBefore, os.nodesAfter, os.constFolded,
                    os.memReadsFolded, os.copyPropagated, os.cseMerged,
                    os.coiDropped);
        std::printf("  engine: %s", run.verify.engineUsed.c_str());
        if (run.verify.satVars)
            std::printf(" | cnf %zu vars %zu clauses, %llu "
                        "conflicts",
                        run.verify.satVars, run.verify.satClauses,
                        static_cast<unsigned long long>(
                            run.verify.satConflicts));
        std::printf("\n");
        for (const auto &p : run.verify.properties)
            if (p.inductionK)
                std::printf("  proven by %u-induction: %s\n",
                            p.inductionK, p.name.c_str());
        for (const auto &p : run.verify.properties) {
            if (p.status == formal::ProofStatus::Falsified) {
                std::printf("  counterexample: %s (%zu cycles)%s\n",
                            p.name.c_str(),
                            p.counterexample->inputs.size(),
                            p.earlyFalsified ? " [early]" : "");
                if (p.earlyFalsified)
                    std::printf("  early falsify: %.2f ms into a "
                                "%.2f ms exploration\n",
                                p.earlyFalsifySeconds * 1e3,
                                run.verify.exploreSeconds * 1e3);
            }
        }
    }

    if (opts.wave && run.verify.coverWitness) {
        std::printf("\nWitness waveform:\n%s\n",
                    core::renderWitness(
                        test, o, *run.verify.coverWitness,
                        core::defaultWaveSignals(
                            static_cast<int>(test.threads.size())))
                        .c_str());
    }

    if (!opts.vcdPath.empty() && run.verify.coverWitness) {
        std::ofstream out(opts.vcdPath);
        if (!out)
            RC_FATAL("cannot write '", opts.vcdPath, "'");
        out << core::renderWitnessVcd(
            test, o, *run.verify.coverWitness,
            core::defaultWaveSignals(
                static_cast<int>(test.threads.size())));
        std::printf("wrote %s\n", opts.vcdPath.c_str());
    }

    if (!opts.emitSva.empty()) {
        std::ofstream out(opts.emitSva);
        if (!out)
            RC_FATAL("cannot write '", opts.emitSva, "'");
        out << core::renderSvaFile(run);
        std::printf("wrote %s\n", opts.emitSva.c_str());
    }
    return run.verified() ? 0 : 1;
}

/** Report the µhb analysis for one test (the --uhb flag). */
void
reportUhb(const litmus::Test &test, const uspec::Model &model,
          bool verbose)
{
    auto r = uhb::checkOutcome(model, test);
    std::printf("µhb analysis: outcome %s (%llu scenarios, %d "
                "axiom instances)\n",
                r.observable ? "OBSERVABLE" : "forbidden",
                static_cast<unsigned long long>(r.scenariosExplored),
                r.numInstances);
    if (r.observable && r.witness && verbose)
        std::printf("%s\n", r.witness->toDot(test).c_str());
}

/** The service configuration implied by --store/--cache-mb. */
service::ServiceConfig
serviceConfigFor(const CliOptions &opts)
{
    service::ServiceConfig sc;
    sc.storeDir = opts.storeDir;
    sc.cacheBytes = opts.cacheMb << 20;
    return sc;
}

int
runOne(const litmus::Test &test, const CliOptions &opts,
       bool verbose)
{
    const uspec::Model &model = modelFor(opts);
    core::RunOptions o = runOptionsFor(opts);
    // A single test parallelizes at the finer grain: the engine's
    // per-property product checks.
    o.config.jobs = opts.jobs;

    if (opts.uhb)
        reportUhb(test, model, verbose);

    core::TestRun run;
    if (!opts.storeDir.empty()) {
        service::VerificationService svc(serviceConfigFor(opts));
        run = svc.runTest(test, model, o);
        if (run.servedFromStore)
            std::printf("(served from store %s)\n",
                        opts.storeDir.c_str());
    } else {
        run = core::runTest(test, model, o);
    }
    return report(test, run, o, opts, verbose);
}

/** The --all mode: the whole suite, `jobs` tests at a time. */
int
runAll(const CliOptions &opts)
{
    const uspec::Model &model = modelFor(opts);
    core::RunOptions o = runOptionsFor(opts);
    const std::vector<litmus::Test> &suite = litmus::standardSuite();

    // Share one state-graph cache across the whole batch: tests with
    // identical (design, assumptions) pairs explore once. With
    // --store the service owns the (spilling) cache instead.
    formal::GraphCache cache;
    std::unique_ptr<service::VerificationService> svc;
    core::SuiteRun sr;
    if (!opts.storeDir.empty()) {
        svc = std::make_unique<service::VerificationService>(
            serviceConfigFor(opts));
        sr = svc->runSuite(suite, model, o, opts.jobs);
    } else {
        if (opts.cacheMb)
            cache.setBudget(opts.cacheMb << 20);
        o.graphCache = &cache;
        sr = core::runSuite(suite, model, o, opts.jobs);
    }
    formal::GraphCache::Stats cs =
        svc ? svc->graphCache().stats() : cache.stats();

    if (opts.json) {
        core::SuiteJsonInfo info;
        info.model = opts.model;
        info.design = opts.design;
        info.config = opts.config;
        info.engine = formal::backendName(opts.engine);
        info.cacheStats = cs;
        std::printf("%s",
                    core::renderSuiteJson(suite, sr, info).c_str());
        int failures = 0;
        for (const core::TestRun &run : sr.runs)
            failures += !run.verified();
        return failures ? 1 : 0;
    }

    int failures = 0;
    double cpu = 0.0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        if (opts.uhb)
            reportUhb(suite[i], model, false);
        failures += report(suite[i], sr.runs[i], o, opts, false) != 0;
        cpu += sr.runs[i].totalSeconds;
    }
    std::printf("%d of %zu tests with violations\n", failures,
                suite.size());
    std::printf("jobs %zu | wall %.3f s | cpu %.3f s | speedup "
                "%.2fx\n",
                sr.jobs, sr.wallSeconds, cpu,
                sr.wallSeconds > 0 ? cpu / sr.wallSeconds : 1.0);
    std::printf("graph cache: %zu explores, %zu hits, %zu evictions "
                "| %zu graphs resident (%.1f MiB)\n",
                cs.explores, cs.hits, cs.evictions, cs.entries,
                static_cast<double>(cs.bytesCached) / (1 << 20));
    if (svc) {
        service::VerificationService::Stats ss = svc->stats();
        std::printf("store: %zu full hits, %zu cone hits, %zu "
                    "misses, %zu artifacts written\n",
                    ss.fullHits, ss.coneHits, ss.misses, ss.stored);
    }
    core::SatTotals st = sr.satTotals();
    if (st.solves)
        std::printf("sat core: %llu solves, %llu conflicts, %llu "
                    "learned-clause reuse hits | %llu frames pushed, "
                    "%llu popped\n",
                    static_cast<unsigned long long>(st.solves),
                    static_cast<unsigned long long>(st.conflicts),
                    static_cast<unsigned long long>(st.learnedReuse),
                    static_cast<unsigned long long>(st.framesPushed),
                    static_cast<unsigned long long>(st.framesPopped));
    return failures ? 1 : 0;
}

/** The --mutate mode: a mutation-testing campaign over the suite. */
int
runMutate(const CliOptions &opts)
{
    const uspec::Model &model = modelFor(opts);
    core::MutationCampaignOptions mo;
    mo.run = runOptionsFor(opts);
    if (!opts.engineSet) {
        // Campaign default per the mutation-testing design: race the
        // engines and take the first falsification.
        mo.run.config.backend = formal::Backend::Portfolio;
        mo.run.config.earlyFalsify = true;
    }
    formal::GraphCache cache;
    if (opts.cacheMb)
        cache.setBudget(opts.cacheMb << 20);
    mo.run.graphCache = &cache;
    mo.mutate.ops = opts.mutateOps;
    mo.mutate.budget = opts.mutateBudget;
    mo.mutate.seed = opts.mutateSeed;
    mo.fullMatrix = opts.mutateFullMatrix;
    mo.satIncremental = opts.satIncremental;
    mo.jobs = opts.jobs;

    std::vector<litmus::Test> tests = litmus::standardSuite();
    if (opts.mutateTests && opts.mutateTests < tests.size())
        tests.resize(opts.mutateTests);

    core::CampaignReport report =
        core::runMutationCampaign(model, tests, mo);

    std::printf("mutation campaign: design %s, %zu tests, "
                "backend %s, %zu mutants\n\n",
                opts.design.c_str(), report.testNames.size(),
                formal::backendName(mo.run.config.backend).c_str(),
                report.mutants.size());
    std::printf("%s", report.renderTable().c_str());
    for (const core::MutantReport &m : report.mutants) {
        if (m.fate == core::MutantFate::Survived)
            std::printf("  SURVIVOR: %s (differs at %s) — no litmus "
                        "test distinguishes it\n",
                        m.mutation.describe().c_str(),
                        m.firstDiff.empty() ? "?"
                                            : m.firstDiff.c_str());
    }
    std::printf("  wall %.3f s | jobs %zu\n", report.wallSeconds,
                report.jobs);
    if (report.miterSolves)
        std::printf("  miter: %llu solves, %llu conflicts, %llu "
                    "learned-clause reuse hits | cone reuse %.1f%%\n",
                    static_cast<unsigned long long>(
                        report.miterSolves),
                    static_cast<unsigned long long>(
                        report.miterConflicts),
                    static_cast<unsigned long long>(
                        report.miterLearnedReuse),
                    report.miterReuseRate() * 100.0);

    if (!opts.mutateJson.empty()) {
        std::ofstream out(opts.mutateJson);
        if (!out)
            RC_FATAL("cannot write '", opts.mutateJson, "'");
        out << report.renderJson();
        std::printf("wrote %s\n", opts.mutateJson.c_str());
    }
    return 0;
}

litmus::synth::SynthOptions
synthOptionsFor(const CliOptions &opts)
{
    litmus::synth::SynthOptions so;
    so.maxThreads = static_cast<int>(opts.synthThreads);
    so.maxInstrsPerThread = static_cast<int>(opts.synthInsns);
    so.maxAddresses = static_cast<int>(opts.synthAddrs);
    so.maxEdges = static_cast<int>(opts.synthEdges);
    so.withFences = opts.synthFences;
    so.budget = opts.synthBudget;
    so.seed = opts.synthSeed;
    // Validated at parse time; default to the suite invariant.
    if (opts.synthKeep == "all")
        so.keep = litmus::synth::KeepFilter::All;
    else if (opts.synthKeep == "tso-relaxed")
        so.keep = litmus::synth::KeepFilter::TsoRelaxed;
    else if (opts.synthKeep == "tso-forbidden")
        so.keep = litmus::synth::KeepFilter::TsoForbidden;
    else
        so.keep = litmus::synth::KeepFilter::ScForbidden;
    return so;
}

/** The --synth mode: cycle-based litmus generation; with
 *  --synth-run the tests also verify on the SoC, and with
 *  --synth-kill-loop they re-target the campaign's survivors. */
int
runSynth(const CliOptions &opts)
{
    litmus::synth::SynthOptions so = synthOptionsFor(opts);

    if (opts.synthKillLoop) {
        core::KillLoopOptions ko;
        ko.campaign.run = runOptionsFor(opts);
        if (!opts.engineSet) {
            ko.campaign.run.config.backend =
                formal::Backend::Portfolio;
            ko.campaign.run.config.earlyFalsify = true;
        }
        formal::GraphCache cache;
        if (opts.cacheMb)
            cache.setBudget(opts.cacheMb << 20);
        ko.campaign.run.graphCache = &cache;
        ko.campaign.mutate.ops = opts.mutateOps;
        ko.campaign.mutate.budget = opts.mutateBudget;
        ko.campaign.mutate.seed = opts.mutateSeed;
        ko.campaign.satIncremental = opts.satIncremental;
        ko.campaign.jobs = opts.jobs;
        ko.synth = so;
        ko.batchSize = opts.synthBatch;
        ko.maxRounds = opts.synthRounds;

        std::vector<litmus::Test> tests = litmus::standardSuite();
        if (opts.mutateTests && opts.mutateTests < tests.size())
            tests.resize(opts.mutateTests);

        core::KillLoopReport rep = core::runCoverageKillLoop(
            modelFor(opts), tests, ko);
        std::printf("coverage-directed kill loop: design %s, %zu "
                    "base tests\n\n%s",
                    opts.design.c_str(), tests.size(),
                    rep.renderSummary().c_str());
        return 0;
    }

    litmus::synth::SynthResult result = litmus::synth::synthesize(so);
    std::printf("litmus synthesis: %zu cycles -> %zu shapes "
                "(%zu duplicate lowerings) | filtered %zu, "
                "sampled out %zu, emitted %zu\n\n",
                result.cyclesEnumerated, result.distinctShapes,
                result.duplicateShapes, result.filteredOut,
                result.sampledOut, result.tests.size());
    for (const litmus::synth::SynthesizedTest &st : result.tests) {
        std::printf("  %-36s sc:%s tso:%s %-9s %s\n",
                    st.cycle.c_str(),
                    st.scObservable ? "obs" : "FORBID",
                    st.tsoObservable ? "obs" : "FORBID",
                    st.classic.empty() ? "-" : st.classic.c_str(),
                    st.test.summary().c_str());
    }

    if (!opts.synthRun)
        return 0;

    // End-to-end plumbing: verify every synthesized test on the SoC
    // exactly like a suite test. On the fixed design each
    // SC-forbidden outcome must be unreachable and every assertion
    // must hold.
    core::RunOptions run = runOptionsFor(opts);
    formal::GraphCache cache;
    if (opts.cacheMb)
        cache.setBudget(opts.cacheMb << 20);
    run.graphCache = &cache;
    std::vector<litmus::Test> tests;
    for (const auto &st : result.tests)
        tests.push_back(st.test);
    core::SuiteRun suite =
        core::runSuite(tests, modelFor(opts), run, opts.jobs);
    int failures = 0;
    std::printf("\n");
    for (const core::TestRun &r : suite.runs) {
        failures += !r.verified();
        std::printf("  %-36s %s  (%d props, %.3fs)\n",
                    r.testName.c_str(),
                    r.verified() ? "verified" : "FAILED",
                    r.numProperties, r.totalSeconds);
    }
    std::printf("\n  %zu tests, %d failures, wall %.3fs\n",
                suite.runs.size(), failures, suite.wallSeconds);
    return failures ? 1 : 0;
}

/** The --store-verify mode: audit the artifact store and report. */
int
runStoreVerify(const CliOptions &opts)
{
    if (opts.storeDir.empty()) {
        std::fprintf(stderr,
                     "rtlcheck_cli: --store-verify needs --store "
                     "<dir>\n");
        return 2;
    }
    service::ArtifactStore store(opts.storeDir);
    std::size_t stale = store.removeStale();
    service::ArtifactStore::Audit audit = store.validateAll(false);
    std::printf("store %s: %zu artifacts checked, %zu corrupt, "
                "%zu stale temp files removed\n",
                opts.storeDir.c_str(), audit.checked, audit.corrupt,
                stale);
    for (const std::string &f : audit.corruptFiles)
        std::printf("  corrupt: %s\n", f.c_str());
    return audit.corrupt ? 1 : 0;
}

/** The --serve mode: run the daemon in-process until a signal. */
service::Daemon *g_daemon = nullptr;

void
onServeSignal(int)
{
    if (g_daemon)
        g_daemon->requestStop();
}

int
runServe(const CliOptions &opts)
{
    service::DaemonConfig config;
    config.socketPath = opts.socketPath;
    config.service = serviceConfigFor(opts);
    config.workers = opts.jobs;

    service::Daemon daemon(config);
    std::string error;
    if (!daemon.start(&error)) {
        std::fprintf(stderr, "rtlcheck_cli: %s\n", error.c_str());
        return 1;
    }
    g_daemon = &daemon;
    std::signal(SIGTERM, onServeSignal);
    std::signal(SIGINT, onServeSignal);
    std::printf("serving on %s (store %s)\n", opts.socketPath.c_str(),
                opts.storeDir.empty() ? "(none)"
                                      : opts.storeDir.c_str());
    std::fflush(stdout);
    daemon.run();
    g_daemon = nullptr;
    std::printf("daemon stopped\n");
    return 0;
}

/** The --client mode: forward the request to a running daemon. */
int
runClient(const CliOptions &opts)
{
    service::Client client;
    std::string error;
    if (!client.connect(opts.socketPath, &error)) {
        std::fprintf(stderr, "rtlcheck_cli: %s\n", error.c_str());
        return 1;
    }

    service::Message request;
    if (opts.ping) {
        request["cmd"] = "ping";
    } else if (opts.shutdownDaemon) {
        request["cmd"] = "shutdown";
    } else if (opts.all) {
        request["cmd"] = "verify_all";
    } else if (!opts.testName.empty()) {
        request["cmd"] = "verify";
        request["test"] = opts.testName;
    } else {
        std::fprintf(stderr,
                     "rtlcheck_cli: --client needs <test-name>, "
                     "--all, --ping, or --shutdown\n");
        return 2;
    }
    request["model"] = opts.model;
    request["design"] = opts.design;
    request["config"] = opts.config;
    request["engine"] = formal::backendName(opts.engine);

    std::optional<service::Message> response =
        client.request(std::move(request));
    if (!response) {
        std::fprintf(stderr,
                     "rtlcheck_cli: daemon hung up mid-request\n");
        return 1;
    }

    // k=v responses print as-is: greppable and diffable across runs.
    for (const auto &kv : *response)
        std::printf("%s=%s\n", kv.first.c_str(), kv.second.c_str());

    auto fieldOf = [&](const char *key) -> std::string {
        auto it = response->find(key);
        return it == response->end() ? "" : it->second;
    };
    if (fieldOf("status") != "ok")
        return 1;
    if (opts.all)
        return fieldOf("failures") == "0" ? 0 : 1;
    if (!opts.testName.empty())
        return fieldOf("verified") == "1" ? 0 : 1;
    return 0;
}

} // namespace

/** Reject a malformed option value: report it, print usage, exit 2.
 *  Silent defaulting (strtoul's 0, an unknown enum falling through)
 *  has burned users before; bad input must never look like a run
 *  with different settings. */
[[noreturn]] void
badValue(const std::string &flag, const std::string &value,
         const char *expected)
{
    std::fprintf(stderr, "rtlcheck_cli: bad value '%s' for %s "
                         "(expected %s)\n",
                 value.c_str(), flag.c_str(), expected);
    usage();
    std::exit(2);
}

/** Strict decimal parse for option counts: the whole token must be
 *  digits ("abc" or "4x" exit with usage instead of becoming 0). */
std::size_t
parseCount(const std::string &flag, const std::string &value)
{
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos)
        badValue(flag, value, "a non-negative integer");
    return static_cast<std::size_t>(
        std::strtoul(value.c_str(), nullptr, 10));
}

int
main(int argc, char **argv)
{
    CliOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                RC_FATAL("option ", arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--model") {
            opts.model = next();
            if (opts.model != "sc" && opts.model != "tso")
                badValue(arg, opts.model, "sc or tso");
        } else if (arg == "--design") {
            opts.design = next();
            if (opts.design != "fixed" && opts.design != "buggy" &&
                opts.design != "tso")
                badValue(arg, opts.design, "fixed, buggy, or tso");
        } else if (arg == "--config") {
            opts.config = next();
            if (opts.config != "hybrid" && opts.config != "full" &&
                opts.config != "unbounded")
                badValue(arg, opts.config,
                         "hybrid, full, or unbounded");
        } else if (arg == "--engine") {
            std::string name = next();
            std::optional<formal::Backend> backend =
                formal::backendFromName(name);
            if (!backend)
                badValue(arg, name, "explicit, bmc, or portfolio");
            opts.engine = *backend;
            opts.engineSet = true;
        } else if (arg == "--mutate") {
            opts.mutate = true;
        } else if (arg == "--mutate-ops") {
            std::string csv = next();
            std::stringstream ss(csv);
            std::string item;
            while (std::getline(ss, item, ',')) {
                std::optional<rtl::MutationOp> op =
                    rtl::mutationOpFromName(item);
                if (!op)
                    badValue(arg, item,
                             "operator names like write-enable-drop, "
                             "stuck-at-0, cond-invert, mux-arm-swap");
                opts.mutateOps.push_back(*op);
            }
            if (opts.mutateOps.empty())
                badValue(arg, csv, "a comma-separated operator list");
        } else if (arg == "--mutate-budget") {
            opts.mutateBudget = parseCount(arg, next());
        } else if (arg == "--mutate-seed") {
            opts.mutateSeed =
                static_cast<std::uint32_t>(parseCount(arg, next()));
        } else if (arg == "--mutate-tests") {
            opts.mutateTests = parseCount(arg, next());
        } else if (arg == "--mutate-full-matrix") {
            opts.mutateFullMatrix = true;
        } else if (arg == "--mutate-json") {
            opts.mutateJson = next();
        } else if (arg == "--synth") {
            opts.synth = true;
        } else if (arg == "--synth-run") {
            opts.synthRun = true;
        } else if (arg == "--synth-kill-loop") {
            opts.synthKillLoop = true;
        } else if (arg == "--synth-fences") {
            opts.synthFences = true;
        } else if (arg == "--synth-threads") {
            opts.synthThreads = parseCount(arg, next());
        } else if (arg == "--synth-insns") {
            opts.synthInsns = parseCount(arg, next());
        } else if (arg == "--synth-addrs") {
            opts.synthAddrs = parseCount(arg, next());
        } else if (arg == "--synth-edges") {
            opts.synthEdges = parseCount(arg, next());
        } else if (arg == "--synth-budget") {
            opts.synthBudget = parseCount(arg, next());
        } else if (arg == "--synth-seed") {
            opts.synthSeed =
                static_cast<std::uint32_t>(parseCount(arg, next()));
        } else if (arg == "--synth-batch") {
            opts.synthBatch = parseCount(arg, next());
        } else if (arg == "--synth-rounds") {
            opts.synthRounds = parseCount(arg, next());
        } else if (arg == "--synth-keep") {
            opts.synthKeep = next();
            if (opts.synthKeep != "all" &&
                opts.synthKeep != "sc-forbidden" &&
                opts.synthKeep != "tso-relaxed" &&
                opts.synthKeep != "tso-forbidden")
                badValue(arg, opts.synthKeep,
                         "all, sc-forbidden, tso-relaxed, or "
                         "tso-forbidden");
        } else if (arg == "--bmc-depth") {
            opts.bmcDepth = parseCount(arg, next());
        } else if (arg == "--induction-depth") {
            opts.inductionDepth = parseCount(arg, next());
        } else if (arg == "--sat-incremental") {
            opts.satIncremental = true;
        } else if (arg == "--no-sat-incremental") {
            opts.satIncremental = false;
        } else if (arg == "--file") {
            opts.litmusFile = next();
        } else if (arg == "--emit-sva") {
            opts.emitSva = next();
        } else if (arg == "--vcd") {
            opts.vcdPath = next();
        } else if (arg == "--jobs") {
            opts.jobs = parseCount(arg, next());
        } else if (arg == "--explore-jobs") {
            opts.exploreJobs = parseCount(arg, next());
        } else if (arg == "--cache-mb") {
            opts.cacheMb = parseCount(arg, next());
        } else if (arg == "--no-early-falsify") {
            opts.earlyFalsify = false;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--store") {
            opts.storeDir = next();
        } else if (arg == "--store-verify") {
            opts.storeVerify = true;
        } else if (arg == "--socket") {
            opts.socketPath = next();
        } else if (arg == "--serve") {
            opts.serve = true;
        } else if (arg == "--client") {
            opts.client = true;
        } else if (arg == "--ping") {
            opts.ping = true;
        } else if (arg == "--shutdown") {
            opts.shutdownDaemon = true;
        } else if (arg == "--naive") {
            opts.naive = true;
        } else if (arg == "--no-netlist-opt") {
            opts.noNetlistOpt = true;
        } else if (arg == "--uhb") {
            opts.uhb = true;
        } else if (arg == "--wave") {
            opts.wave = true;
        } else if (arg == "--list") {
            opts.list = true;
        } else if (arg == "--all") {
            opts.all = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 2;
        } else {
            opts.testName = arg;
        }
    }

    if (opts.list) {
        auto listSuite = [](const char *suite,
                            const std::vector<litmus::Test> &tests) {
            for (const litmus::Test &t : tests)
                std::printf("%-14s %s  %zu cores  %2d instrs\n",
                            t.name.c_str(), suite,
                            t.threads.size(), t.numInstrs());
        };
        listSuite("standard", litmus::standardSuite());
        listSuite("fence   ", litmus::fenceSuite());
        return 0;
    }

    if (opts.storeVerify)
        return runStoreVerify(opts);

    if (opts.serve)
        return runServe(opts);

    if (opts.client)
        return runClient(opts);

    if (opts.mutate)
        return runMutate(opts);

    if (opts.synth || opts.synthRun || opts.synthKillLoop)
        return runSynth(opts);

    if (opts.all)
        return runAll(opts);

    if (!opts.litmusFile.empty()) {
        std::ifstream in(opts.litmusFile);
        if (!in)
            RC_FATAL("cannot read '", opts.litmusFile, "'");
        std::ostringstream text;
        text << in.rdbuf();
        litmus::Test test = litmus::parseTest(text.str());
        return runOne(test, opts, true);
    }

    if (opts.testName.empty()) {
        usage();
        return 2;
    }
    return runOne(litmus::suiteTest(opts.testName), opts, true);
}
